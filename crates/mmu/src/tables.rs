//! Four-level page tables stored in simulated physical frames.
//!
//! Table entries are little-endian u64s written into [`PhysMemory`], so a
//! page walk is a sequence of real physical reads. [`Walk::steps`] exposes
//! every address a walk touched; the kernel routes them through the LLC,
//! which is precisely what the AnC translation attack (§5.1) measures: a
//! 2 MiB mapping touches three table levels, a 4 KiB mapping four.

use vusion_mem::{FrameAllocator, FrameId, PageType, PhysAddr, PhysMemory, VirtAddr};

use crate::pte::{Pte, PteFlags};

/// Information about the leaf entry that maps an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafInfo {
    /// The leaf entry.
    pub pte: Pte,
    /// Physical address of the entry itself (inside a table frame).
    pub entry_addr: PhysAddr,
    /// Whether the mapping is a 2 MiB huge page.
    pub huge: bool,
}

/// Result of a page walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Physical addresses of every table entry read, in order (PML4 first).
    pub steps: Vec<PhysAddr>,
    /// The leaf mapping, if the walk reached one. `None` means the walk hit
    /// a non-present intermediate entry or an empty leaf.
    pub leaf: Option<LeafInfo>,
}

/// A 4-level page-table tree rooted at a PML4 frame.
pub struct PageTables {
    root: FrameId,
}

/// Flags given to intermediate (non-leaf) table entries.
const TABLE_FLAGS: u64 = PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::USER;

impl PageTables {
    /// Allocates an empty PML4.
    ///
    /// # Panics
    ///
    /// Panics if the allocator is out of frames.
    pub fn new(mem: &mut PhysMemory, alloc: &mut dyn FrameAllocator) -> Self {
        let root = Self::alloc_table(mem, alloc);
        Self { root }
    }

    /// The PML4 frame.
    pub fn root(&self) -> FrameId {
        self.root
    }

    fn alloc_table(mem: &mut PhysMemory, alloc: &mut dyn FrameAllocator) -> FrameId {
        let f = alloc.alloc().expect("out of memory allocating page table");
        mem.info_mut(f).on_alloc(PageType::PageTable);
        mem.zero_page(f);
        f
    }

    fn entry_addr(table: FrameId, idx: usize) -> PhysAddr {
        table.base() + (idx as u64) * 8
    }

    fn read_entry(mem: &PhysMemory, table: FrameId, idx: usize) -> Pte {
        Pte(mem.read_u64(Self::entry_addr(table, idx)))
    }

    fn write_entry(mem: &mut PhysMemory, table: FrameId, idx: usize, pte: Pte) {
        mem.write_u64(Self::entry_addr(table, idx), pte.0);
    }

    /// Walks the tables for `va`, recording each entry address touched.
    pub fn walk(&self, mem: &PhysMemory, va: VirtAddr) -> Walk {
        let idx = va.pt_indices();
        let mut steps = Vec::with_capacity(4);
        let mut table = self.root;
        for (level, &ix) in idx.iter().enumerate() {
            let entry_addr = Self::entry_addr(table, ix);
            steps.push(entry_addr);
            let pte = Self::read_entry(mem, table, idx[level]);
            if level == 3 {
                // PT leaf.
                let leaf = if pte.is_empty() {
                    None
                } else {
                    Some(LeafInfo {
                        pte,
                        entry_addr,
                        huge: false,
                    })
                };
                return Walk { steps, leaf };
            }
            if level == 2 && pte.has(PteFlags::HUGE) {
                // PD leaf mapping a 2 MiB page: 3-level walk.
                return Walk {
                    steps,
                    leaf: Some(LeafInfo {
                        pte,
                        entry_addr,
                        huge: true,
                    }),
                };
            }
            if !pte.is_present() {
                return Walk { steps, leaf: None };
            }
            table = pte.frame();
        }
        unreachable!("loop returns at level 3");
    }

    /// Ensures intermediate tables down to the PT exist and returns the PT
    /// frame. Splits nothing: panics if a huge mapping is in the way.
    fn ensure_pt(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
    ) -> FrameId {
        let idx = va.pt_indices();
        let mut table = self.root;
        for (level, &ix) in idx.iter().enumerate().take(3) {
            let pte = Self::read_entry(mem, table, ix);
            if level == 2 && pte.has(PteFlags::HUGE) {
                panic!("4 KiB mapping requested under an existing huge mapping at {va:?}");
            }
            table = if pte.is_present() {
                pte.frame()
            } else {
                let t = Self::alloc_table(mem, alloc);
                Self::write_entry(mem, table, idx[level], Pte::new(t, TABLE_FLAGS));
                t
            };
        }
        table
    }

    /// Maps `va` (4 KiB) to `frame` with the given flags.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped (unmap first) or a huge mapping
    /// covers the address.
    pub fn map_page(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
        frame: FrameId,
        flags: u64,
    ) {
        let pt = self.ensure_pt(mem, alloc, va);
        let idx = va.pt_indices()[3];
        let old = Self::read_entry(mem, pt, idx);
        assert!(old.is_empty(), "remapping an already mapped page at {va:?}");
        Self::write_entry(mem, pt, idx, Pte::new(frame, flags));
    }

    /// Maps a 2 MiB huge page at `va` (must be 2 MiB aligned) to the 512
    /// frames starting at `frame` (must be huge-aligned).
    ///
    /// # Panics
    ///
    /// Panics on misalignment or if anything is already mapped there.
    pub fn map_huge(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
        frame: FrameId,
        flags: u64,
    ) {
        assert!(
            va.is_huge_aligned(),
            "huge mapping at unaligned address {va:?}"
        );
        assert!(
            frame.is_huge_aligned(),
            "huge mapping of unaligned frame {frame:?}"
        );
        let idx = va.pt_indices();
        let mut table = self.root;
        for &ix in idx.iter().take(2) {
            let pte = Self::read_entry(mem, table, ix);
            table = if pte.is_present() {
                pte.frame()
            } else {
                let t = Self::alloc_table(mem, alloc);
                Self::write_entry(mem, table, ix, Pte::new(t, TABLE_FLAGS));
                t
            };
        }
        let old = Self::read_entry(mem, table, idx[2]);
        assert!(
            old.is_empty(),
            "huge-remapping an occupied PD slot at {va:?}"
        );
        Self::write_entry(mem, table, idx[2], Pte::new(frame, flags | PteFlags::HUGE));
    }

    /// Reads the leaf mapping for `va` without recording steps.
    pub fn leaf(&self, mem: &PhysMemory, va: VirtAddr) -> Option<LeafInfo> {
        self.walk(mem, va).leaf
    }

    /// Overwrites the leaf entry that maps `va` (4 KiB or huge).
    ///
    /// # Panics
    ///
    /// Panics if `va` has no leaf entry.
    pub fn set_leaf(&mut self, mem: &mut PhysMemory, va: VirtAddr, pte: Pte) {
        let leaf = self.leaf(mem, va).expect("set_leaf on unmapped address");
        mem.write_u64(leaf.entry_addr, pte.0);
    }

    /// Removes the leaf mapping for `va` and returns the old entry.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not mapped.
    pub fn unmap(&mut self, mem: &mut PhysMemory, va: VirtAddr) -> Pte {
        let leaf = self.leaf(mem, va).expect("unmapping an unmapped address");
        mem.write_u64(leaf.entry_addr, Pte::EMPTY.0);
        leaf.pte
    }

    /// Replaces a huge mapping with a PT of 512 4-KiB entries pointing at
    /// the same 512 frames with the same permission flags (KSM-style huge
    /// page break, §5.1 / §8.1). Returns the new PT frame.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not covered by a huge mapping.
    pub fn break_huge(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
    ) -> FrameId {
        let base = va.huge_base();
        let leaf = self
            .leaf(mem, base)
            .expect("break_huge on unmapped address");
        assert!(leaf.huge, "break_huge on a 4 KiB mapping");
        let flags = leaf.pte.flags() & !PteFlags::HUGE;
        let first = leaf.pte.frame();
        let pt = Self::alloc_table(mem, alloc);
        for i in 0..512u64 {
            Self::write_entry(mem, pt, i as usize, Pte::new(FrameId(first.0 + i), flags));
        }
        mem.write_u64(leaf.entry_addr, Pte::new(pt, TABLE_FLAGS).0);
        pt
    }

    /// Replaces 512 4-KiB mappings (which must cover the whole huge range
    /// starting at `va`, all pointing into the huge-aligned block starting
    /// at `frame`) with one huge mapping, freeing the PT frame.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or when the PD slot does not hold a PT.
    pub fn collapse_huge(
        &mut self,
        mem: &mut PhysMemory,
        alloc: &mut dyn FrameAllocator,
        va: VirtAddr,
        frame: FrameId,
        flags: u64,
    ) {
        assert!(
            va.is_huge_aligned() && frame.is_huge_aligned(),
            "collapse alignment"
        );
        let idx = va.pt_indices();
        let mut table = self.root;
        for &ix in idx.iter().take(2) {
            let pte = Self::read_entry(mem, table, ix);
            assert!(pte.is_present(), "collapse under non-present table");
            table = pte.frame();
        }
        let pd_entry = Self::read_entry(mem, table, idx[2]);
        assert!(
            pd_entry.is_present() && !pd_entry.has(PteFlags::HUGE),
            "PD slot does not hold a PT"
        );
        let pt = pd_entry.frame();
        Self::write_entry(mem, table, idx[2], Pte::new(frame, flags | PteFlags::HUGE));
        // Release the now-unused PT frame. Zero it first: every free path
        // must scrub, or stale PTE bytes would leak into later demand-zero
        // pages (the buddy's LIFO reuse hands this frame out next).
        let info = mem.info_mut(pt);
        assert!(info.put(), "PT frame must have a single reference");
        info.on_free();
        mem.zero_page(pt);
        alloc.free(pt);
    }

    /// Whether the PD slot covering `va` is completely empty (no PT, no
    /// huge mapping) — i.e. a 2 MiB demand mapping could be installed.
    pub fn huge_slot_free(&self, mem: &PhysMemory, va: VirtAddr) -> bool {
        let idx = va.pt_indices();
        let mut table = self.root;
        for &ix in idx.iter().take(2) {
            let pte = Self::read_entry(mem, table, ix);
            if !pte.is_present() {
                return true;
            }
            table = pte.frame();
        }
        Self::read_entry(mem, table, idx[2]).is_empty()
    }

    /// Tests and clears the ACCESSED bit of the leaf mapping `va` — the
    /// idle-page-tracking primitive (§7.2). Returns `None` if unmapped.
    pub fn test_and_clear_accessed(&mut self, mem: &mut PhysMemory, va: VirtAddr) -> Option<bool> {
        let leaf = self.leaf(mem, va)?;
        let was = leaf.pte.has(PteFlags::ACCESSED);
        if was {
            mem.write_u64(leaf.entry_addr, leaf.pte.clear(PteFlags::ACCESSED).0);
        }
        Some(was)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_mem::BuddyAllocator;

    fn setup() -> (PhysMemory, BuddyAllocator, PageTables) {
        let mut mem = PhysMemory::new(4096);
        let mut alloc = BuddyAllocator::new(FrameId(0), 4096);
        let pt = PageTables::new(&mut mem, &mut alloc);
        (mem, alloc, pt)
    }

    fn user_frame(mem: &mut PhysMemory, alloc: &mut BuddyAllocator) -> FrameId {
        let f = alloc.alloc().expect("frame");
        mem.info_mut(f).on_alloc(PageType::Anon);
        f
    }

    #[test]
    fn map_and_walk_4k() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x7000_0000_0000);
        pt.map_page(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::USER,
        );
        let w = pt.walk(&mem, va);
        assert_eq!(w.steps.len(), 4, "4 KiB mapping walks four levels");
        let leaf = w.leaf.expect("mapped");
        assert_eq!(leaf.pte.frame(), f);
        assert!(!leaf.huge);
    }

    #[test]
    fn unmapped_walk_has_no_leaf() {
        let (mem, _alloc, pt) = setup();
        let w = pt.walk(&mem, VirtAddr(0x1234_5000));
        assert!(w.leaf.is_none());
        assert_eq!(w.steps.len(), 1, "stops at the first non-present level");
    }

    #[test]
    fn huge_mapping_walks_three_levels() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(0x4000_0000);
        pt.map_huge(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        );
        let w = pt.walk(&mem, va + 5 * 4096 + 3);
        assert_eq!(w.steps.len(), 3, "2 MiB mapping walks three levels");
        let leaf = w.leaf.expect("mapped");
        assert!(leaf.huge);
        assert_eq!(leaf.pte.frame(), f);
    }

    #[test]
    fn break_huge_preserves_translation() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(0x4000_0000);
        pt.map_huge(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        );
        pt.break_huge(&mut mem, &mut alloc, va + 17 * 4096);
        // Every sub-page now maps 4 KiB to the corresponding frame.
        for i in [0u64, 17, 511] {
            let w = pt.walk(&mem, va + i * 4096);
            assert_eq!(w.steps.len(), 4, "now a 4-level walk");
            let leaf = w.leaf.expect("still mapped");
            assert!(!leaf.huge);
            assert_eq!(leaf.pte.frame(), FrameId(f.0 + i));
            assert!(leaf.pte.has(PteFlags::WRITABLE));
        }
    }

    #[test]
    fn collapse_huge_restores_three_level_walk() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("huge block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        let va = VirtAddr(0x4000_0000);
        pt.map_huge(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        );
        pt.break_huge(&mut mem, &mut alloc, va);
        let table_frames_before = alloc.free_frames();
        pt.collapse_huge(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::WRITABLE,
        );
        assert_eq!(
            alloc.free_frames(),
            table_frames_before + 1,
            "PT frame freed"
        );
        let w = pt.walk(&mem, va + 4096);
        assert_eq!(w.steps.len(), 3);
        assert!(w.leaf.expect("mapped").huge);
    }

    #[test]
    fn set_leaf_changes_mapping() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let g = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x1000);
        pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT);
        let leaf = pt.leaf(&mem, va).expect("mapped");
        pt.set_leaf(
            &mut mem,
            va,
            leaf.pte
                .with_frame(g)
                .set(PteFlags::RESERVED | PteFlags::NO_CACHE),
        );
        let new = pt.leaf(&mem, va).expect("mapped");
        assert_eq!(new.pte.frame(), g);
        assert!(new.pte.is_trapped());
        assert!(new.pte.has(PteFlags::NO_CACHE));
    }

    #[test]
    fn unmap_clears_leaf() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x2000);
        pt.map_page(&mut mem, &mut alloc, va, f, PteFlags::PRESENT);
        let old = pt.unmap(&mut mem, va);
        assert_eq!(old.frame(), f);
        assert!(pt.leaf(&mem, va).is_none());
    }

    #[test]
    fn accessed_bit_test_and_clear() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        let va = VirtAddr(0x3000);
        pt.map_page(
            &mut mem,
            &mut alloc,
            va,
            f,
            PteFlags::PRESENT | PteFlags::ACCESSED,
        );
        assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(true));
        assert_eq!(pt.test_and_clear_accessed(&mut mem, va), Some(false));
        assert_eq!(
            pt.test_and_clear_accessed(&mut mem, VirtAddr(0x9999_0000)),
            None
        );
    }

    #[test]
    fn distinct_addresses_share_tables() {
        let (mut mem, mut alloc, mut pt) = setup();
        let free_before = alloc.free_frames();
        let f1 = user_frame(&mut mem, &mut alloc);
        let f2 = user_frame(&mut mem, &mut alloc);
        pt.map_page(
            &mut mem,
            &mut alloc,
            VirtAddr(0x1000),
            f1,
            PteFlags::PRESENT,
        );
        let tables_after_first = free_before - alloc.free_frames();
        pt.map_page(
            &mut mem,
            &mut alloc,
            VirtAddr(0x2000),
            f2,
            PteFlags::PRESENT,
        );
        let tables_after_second = free_before - alloc.free_frames();
        // The second mapping reuses the same PDPT/PD/PT: no new table frames.
        assert_eq!(tables_after_second, tables_after_first);
    }

    #[test]
    #[should_panic(expected = "remapping")]
    fn double_map_panics() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = user_frame(&mut mem, &mut alloc);
        pt.map_page(&mut mem, &mut alloc, VirtAddr(0x1000), f, PteFlags::PRESENT);
        pt.map_page(&mut mem, &mut alloc, VirtAddr(0x1000), f, PteFlags::PRESENT);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn huge_map_requires_alignment() {
        let (mut mem, mut alloc, mut pt) = setup();
        let f = alloc.alloc_order(9).expect("block");
        mem.info_mut(f).on_alloc(PageType::Anon);
        pt.map_huge(&mut mem, &mut alloc, VirtAddr(0x1000), f, PteFlags::PRESENT);
    }
}
