//! A minimal Rust lexer: just enough to walk a source file as a token
//! stream with line numbers.
//!
//! The rules in this crate only ever match identifier/punctuation
//! sequences, so the lexer's job is mostly *negative*: make sure that
//! comments, string literals (including raw strings), char literals, and
//! lifetimes can never masquerade as code. Numeric literals keep their
//! text so magic-constant rules can look at them; string/char literals
//! are reduced to opaque placeholder tokens.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `self`, `HashMap`, ...).
    Ident,
    /// Integer (or degenerate float) literal; text is the raw spelling.
    Int,
    /// String literal of any flavor (content dropped).
    Str,
    /// Char or byte literal (content dropped).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `source` into a token stream. Unterminated literals and comments
/// simply end at EOF — for a linter, resilience beats strictness.
pub fn lex(source: &str) -> Vec<Token> {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_lines!(c);
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] {
                '/' => {
                    while i < bytes.len() && bytes[i] != '\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    let mut depth = 1u32;
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == '*' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            bump_lines!(bytes[i]);
                            i += 1;
                        }
                    }
                    continue;
                }
                _ => {}
            }
        }
        // Raw strings: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || c == 'b') && i + 1 < bytes.len() {
            let start = if c == 'b' && bytes[i + 1] == 'r' {
                i + 2
            } else if c == 'r' {
                i + 1
            } else {
                usize::MAX
            };
            if start != usize::MAX && start < bytes.len() {
                let mut hashes = 0usize;
                let mut j = start;
                while j < bytes.len() && bytes[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == '"' {
                    let tok_line = line;
                    j += 1;
                    'scan: while j < bytes.len() {
                        if bytes[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < bytes.len() && bytes[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        bump_lines!(bytes[j]);
                        j += 1;
                    }
                    out.push(Token {
                        kind: Kind::Str,
                        text: String::new(),
                        line: tok_line,
                    });
                    i = j;
                    continue;
                }
            }
        }
        // Byte strings / byte chars: b"..." and b'x'.
        if c == 'b' && i + 1 < bytes.len() && (bytes[i + 1] == '"' || bytes[i + 1] == '\'') {
            i += 1;
            // Fall through to the string/char cases below on the quote.
            let q = bytes[i];
            let (kind, tok_line) = (if q == '"' { Kind::Str } else { Kind::Char }, line);
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == q {
                    i += 1;
                    break;
                }
                bump_lines!(bytes[i]);
                i += 1;
            }
            out.push(Token {
                kind,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }
        // Plain strings.
        if c == '"' {
            let tok_line = line;
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == '"' {
                    i += 1;
                    break;
                }
                bump_lines!(bytes[i]);
                i += 1;
            }
            out.push(Token {
                kind: Kind::Str,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let tok_line = line;
            if i + 1 < bytes.len() && bytes[i + 1] == '\\' {
                // Escaped char literal: '\n', '\u{...}', ...
                i += 2;
                while i < bytes.len() && bytes[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.push(Token {
                    kind: Kind::Char,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }
            if i + 1 < bytes.len() && is_ident_start(bytes[i + 1]) {
                // Consume the identifier; a trailing quote makes it a char.
                let mut j = i + 1;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == '\'' {
                    out.push(Token {
                        kind: Kind::Char,
                        text: String::new(),
                        line: tok_line,
                    });
                    i = j + 1;
                } else {
                    let name: String = bytes[i + 1..j].iter().collect();
                    out.push(Token {
                        kind: Kind::Lifetime,
                        text: name,
                        line: tok_line,
                    });
                    i = j;
                }
                continue;
            }
            // Something like '(' — a non-ident char literal.
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != '\'' && bytes[j] != '\n' {
                j += 1;
            }
            out.push(Token {
                kind: Kind::Char,
                text: String::new(),
                line: tok_line,
            });
            i = (j + 1).min(bytes.len());
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let tok_line = line;
            let mut j = i;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            out.push(Token {
                kind: Kind::Ident,
                text: bytes[i..j].iter().collect(),
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Numeric literals (hex/typed suffixes included; `1.5` splits at
        // the dot, which is fine for the rules here).
        if c.is_ascii_digit() {
            let tok_line = line;
            let mut j = i;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            out.push(Token {
                kind: Kind::Int,
                text: bytes[i..j].iter().collect(),
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Everything else: single punctuation char.
        out.push(Token {
            kind: Kind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            let s = "SystemTime in a string";
            let r = r#"HashSet in a raw string"#;
            let c = 'H';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|s| s.contains("Hash") || s.contains("Time")));
        assert!(!ids.iter().any(|s| s == "Instant"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Char).count(), 1);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/*\n\n*/\nb \"x\ny\" c";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.is_ident("a")).map(|t| t.line);
        let b = toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        let c = toks.iter().find(|t| t.is_ident("c")).map(|t| t.line);
        assert_eq!(a, Some(1));
        assert_eq!(b, Some(5));
        assert_eq!(c, Some(6));
    }

    #[test]
    fn hex_and_shift_literals_keep_text() {
        let toks = lex("let m = 0x0007_FFFF; let r = 1u64 << 51;");
        let ints: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == Kind::Int)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ints, vec!["0x0007_FFFF", "1u64", "51"]);
    }
}
