//! The rule implementations. The D/T/P/E/G/O families are per-file
//! passes over a token stream; the W/S/J/R families run on the
//! workspace level, over the item parser's structs/impls and the
//! cross-file name-based call graph.
//!
//! Rules are deliberately token-level, not type-level: they trade a
//! little precision for zero dependencies and total determinism, and the
//! `// vlint: allow(RULE, reason)` escape hatch absorbs the (rare,
//! documented) false positives.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Kind, Token};
use crate::workspace::{self, WorkspaceCtx};
use crate::{matching_brace, FileCtx, Finding};

fn push(ctx: &FileCtx<'_>, out: &mut Vec<Finding>, line: u32, rule: &'static str, msg: String) {
    out.push(Finding {
        file: ctx.rel.to_string(),
        line,
        rule,
        message: msg,
    });
}

/// Whether `tokens[i..]` starts the path segment `a :: b` for any `b` in
/// `tails`. Returns the matched tail.
fn path_seg<'t>(tokens: &'t [Token], i: usize, head: &str, tails: &[&str]) -> Option<&'t Token> {
    if tokens.get(i)?.is_ident(head)
        && tokens.get(i + 1)?.is_punct(':')
        && tokens.get(i + 2)?.is_punct(':')
    {
        let t = tokens.get(i + 3)?;
        if tails.iter().any(|s| t.is_ident(s)) {
            return Some(t);
        }
    }
    None
}

// ---------------------------------------------------------------------
// D — determinism
// ---------------------------------------------------------------------

/// D001 wall-clock time, D002 randomized-order collections, D003
/// environment reads, D004 platform-conditional compilation.
pub(crate) fn determinism(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // D001 — wall-clock time. `Instant`/`SystemTime` count only in
        // clock-like positions — imported from a `time` path or used as
        // `Instant::now()` etc. The tracer's own `Phase::Instant` variant
        // and `InstantKind` are simulator vocabulary and stay legal.
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            let from_time_path = i >= 3
                && toks[i - 3].is_ident("time")
                && toks[i - 2].is_punct(':')
                && toks[i - 1].is_punct(':');
            let clock_call = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| {
                    n.is_ident("now")
                        || n.is_ident("elapsed")
                        || n.is_ident("duration_since")
                        || n.is_ident("UNIX_EPOCH")
                });
            if from_time_path || clock_call {
                push(
                    ctx,
                    out,
                    t.line,
                    "D001",
                    format!(
                        "`{}` reads the host clock; simulation time comes from the machine's \
                         cycle counter",
                        t.text
                    ),
                );
            }
        }
        if path_seg(toks, i, "std", &["time"]).is_some() {
            push(
                ctx,
                out,
                t.line,
                "D001",
                "`std::time` is host wall-clock; simulation time comes from the machine's \
                 cycle counter"
                    .to_string(),
            );
        }
        // D002 — hash collections iterate in randomized order.
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push(
                ctx,
                out,
                t.line,
                "D002",
                format!(
                    "`{}` iterates in randomized order; use BTreeMap/BTreeSet (or a Vec) so \
                     every run of a seed is identical",
                    t.text
                ),
            );
        }
        // D003 — environment reads make behavior depend on the host.
        if let Some(m) = path_seg(toks, i, "env", &["var", "var_os", "vars", "vars_os"]) {
            push(
                ctx,
                out,
                t.line,
                "D003",
                format!(
                    "`env::{}` makes simulation behavior depend on the host environment; \
                     thread configuration through explicit config structs",
                    m.text
                ),
            );
        }
        // D004 — platform-conditional simulation behavior (attributes and
        // the `cfg!(...)` macro alike).
        let cfg_open = if t.is_ident("cfg") {
            if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                i + 2
            } else {
                i + 1
            }
        } else {
            usize::MAX
        };
        if cfg_open != usize::MAX && toks.get(cfg_open).is_some_and(|n| n.is_punct('(')) {
            let mut j = cfg_open + 1;
            let mut depth = 1usize;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                } else if depth > 0 {
                    const PLATFORM: &[&str] = &[
                        "target_os",
                        "target_arch",
                        "target_family",
                        "target_endian",
                        "target_pointer_width",
                        "unix",
                        "windows",
                    ];
                    if PLATFORM.iter().any(|p| toks[j].is_ident(p)) {
                        push(
                            ctx,
                            out,
                            toks[j].line,
                            "D004",
                            format!(
                                "platform-conditional `cfg({})` in a simulation crate: results \
                                 must not depend on the host platform",
                                toks[j].text
                            ),
                        );
                    }
                }
                j += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// T — threading
// ---------------------------------------------------------------------

/// T001: host threads in a determinism crate. Engine-side parallelism
/// goes through the approved shard runner (`crates/core/src/shard.rs`,
/// which carries the one allow annotation), whose pre-partitioned work
/// and enumeration-order reduction keep every artifact byte-identical at
/// any worker count; ad-hoc `std::thread` use reintroduces scheduling
/// order as a hidden input. The campaign driver's whole-run fan-out
/// (each worker owns entire deterministic runs) is baselined.
pub(crate) fn threading(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // `std::thread` by full path (imports and inline paths alike).
        if path_seg(toks, i, "std", &["thread"]).is_some() {
            push(
                ctx,
                out,
                t.line,
                "T001",
                "`std::thread` spawns host threads in a determinism crate; scan \
                 parallelism goes through the shard runner (crates/core/src/shard.rs) \
                 so artifacts stay byte-identical at any worker count"
                    .to_string(),
            );
            continue;
        }
        // `thread::spawn` / `thread::scope` / `thread::Builder` after a
        // `use std::thread`. Skip when preceded by `::` — that is the
        // tail of a `std::thread::...` path already reported above.
        let path_tail = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        if !path_tail {
            if let Some(m) = path_seg(toks, i, "thread", &["spawn", "scope", "Builder"]) {
                push(
                    ctx,
                    out,
                    t.line,
                    "T001",
                    format!(
                        "`thread::{}` spawns host threads in a determinism crate; scan \
                         parallelism goes through the shard runner \
                         (crates/core/src/shard.rs) so artifacts stay byte-identical \
                         at any worker count",
                        m.text
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// W — write-gen coherence
// ---------------------------------------------------------------------

/// W001: a `&mut self` function that reaches the frame-content store
/// (`self.data`) must bump a write generation — either directly (a
/// `.write_gen = ...` assignment in its body) or by calling, possibly
/// transitively, a function that does. The fixpoint runs over the
/// *workspace* call graph, so a bump delegated to another file (e.g.
/// `FrameInfo::bump` called from `PhysMemory`) satisfies the rule. The
/// rule only reports in files that participate in the write-gen protocol
/// at all (mention the `write_gen` identifier), so unrelated `data`
/// fields elsewhere do not trip it.
pub(crate) fn write_gen(ws: &WorkspaceCtx<'_, '_>, out: &mut Vec<Finding>) {
    // Fixpoint: a function "bumps" if it writes `.write_gen = ...` itself
    // or calls (by name, anywhere in the workspace) a bumper.
    let mut bumpers: BTreeSet<&str> = ws
        .nodes
        .iter()
        .filter(|n| n.writes_gen)
        .map(|n| n.name.as_str())
        .collect();
    loop {
        let before = bumpers.len();
        for n in &ws.nodes {
            if !bumpers.contains(n.name.as_str())
                && n.calls.iter().any(|c| bumpers.contains(c.as_str()))
            {
                bumpers.insert(n.name.as_str());
            }
        }
        if bumpers.len() == before {
            break;
        }
    }

    let in_protocol: Vec<bool> = ws
        .files
        .iter()
        .map(|f| f.tokens.iter().any(|t| t.is_ident("write_gen")))
        .collect();
    for n in &ws.nodes {
        if n.in_test || !in_protocol[n.file] {
            continue;
        }
        if n.takes_mut_self && n.touches_data && !bumpers.contains(n.name.as_str()) {
            out.push(Finding {
                file: ws.files[n.file].rel.to_string(),
                line: n.line,
                rule: "W001",
                message: format!(
                    "`{}` takes `&mut self` and reaches frame contents (`self.data`) but never \
                     bumps a write generation; stale memoized hashes would survive the mutation",
                    n.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// P — PTE typing
// ---------------------------------------------------------------------

const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn ident_has(t: &Token, needle: &str) -> bool {
    t.kind == Kind::Ident && t.text.to_ascii_lowercase().contains(needle)
}

/// P001 raw `u64` PTE manipulation outside `vusion-mmu`; P002 use of the
/// `bits`/`from_bits`/`to_bits` escape hatches outside `vusion-mmu`.
pub(crate) fn pte_typing(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // P001a — a binding/param/field named like a PTE typed as a raw
        // word: `pte: u64` (but not the path `pte::...`).
        if ident_has(t, "pte")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("u64"))
        {
            push(
                ctx,
                out,
                t.line,
                "P001",
                format!(
                    "`{}` is a raw `u64` page-table word; outside vusion-mmu use the typed \
                     `Pte`/`PteFlags` API",
                    t.text
                ),
            );
        }
        // P001b — the reserved-bit magic constant: `... << 51`.
        if t.is_punct('<')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('<'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == Kind::Int && n.text == "51")
        {
            push(
                ctx,
                out,
                t.line,
                "P001",
                "shifting into bit 51 re-derives the reserved-bit trap by hand; use \
                 `PteFlags::RESERVED`"
                    .to_string(),
            );
        }
        // P001c — bit-operating a PTE-named value against an integer
        // literal: `pte & 0xfff`, `pte.0 | 4`, `raw_pte ^ 1`.
        if ident_has(t, "pte") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct('.'))
                && toks.get(j + 1).is_some_and(|n| n.kind == Kind::Int)
            {
                j += 2; // tuple-field access like `pte.0`
            }
            let op = toks
                .get(j)
                .filter(|n| n.is_punct('|') || n.is_punct('&') || n.is_punct('^'));
            let shift = toks
                .get(j)
                .filter(|n| n.is_punct('<') || n.is_punct('>'))
                .and_then(|n| toks.get(j + 1).filter(|m| m.text == n.text));
            let rhs = if op.is_some() {
                toks.get(j + 1)
            } else if shift.is_some() {
                toks.get(j + 2)
            } else {
                None
            };
            if rhs.is_some_and(|r| r.kind == Kind::Int) {
                push(
                    ctx,
                    out,
                    t.line,
                    "P001",
                    format!(
                        "raw bit arithmetic on `{}`; outside vusion-mmu PTE bits are only \
                         touched through `PteFlags` masks",
                        t.text
                    ),
                );
            }
        }
        // P002a — the escape-hatch constructors by path.
        if (t.is_ident("Pte") || t.is_ident("PteFlags"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| {
                n.is_ident("from_bits") || n.is_ident("to_bits") || n.is_ident("bits")
            })
        {
            push(
                ctx,
                out,
                t.line,
                "P002",
                format!(
                    "`{}::{}` is the raw-bits escape hatch; it is reserved for vusion-mmu's \
                     own encoding and snapshot wire formats",
                    t.text,
                    toks[i + 3].text
                ),
            );
        }
        // P002b — method-call form on something PTE-ish nearby:
        // `leaf.pte.to_bits()`, `flags.bits()`.
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("to_bits") || n.is_ident("bits"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let lookback = toks[i.saturating_sub(8)..i].iter();
            if lookback
                .filter(|b| b.kind == Kind::Ident)
                .any(|b| ident_has(b, "pte") || ident_has(b, "flag"))
            {
                push(
                    ctx,
                    out,
                    t.line,
                    "P002",
                    format!(
                        "`.{}()` on a PTE value leaks the raw word outside vusion-mmu; use \
                         the typed accessors",
                        toks[i + 1].text
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// E — error policy
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// E001 undocumented panics in simulation code; E002 silently-truncating
/// casts on frame/generation/cycle arithmetic.
pub(crate) fn error_policy(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // E001 — panic-family macro invocation. Test code is exempt
        // (including `#[cfg(test)]` mods and `#[cfg(debug_assertions)]`
        // blocks); `debug_assert*` never matches; a function whose doc
        // comment carries a `# Panics` section has declared the contract.
        if t.kind == Kind::Ident
            && PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && !ctx.in_test_code(t.line)
        {
            let documented = ctx.enclosing_fn(i).is_some_and(|f| f.has_panics_doc);
            if !documented {
                push(
                    ctx,
                    out,
                    t.line,
                    "E001",
                    format!(
                        "`{}!` in simulation code: either document the contract with a \
                         `# Panics` doc section, demote to `debug_assert!`, or return an error",
                        t.text
                    ),
                );
            }
        }
        // E002 — `frame as u32`-style truncation. Frame numbers,
        // generations, and cycle counts are u64 end to end; a narrowing
        // `as` silently wraps. (usize is excluded: index casts are fine.)
        if t.kind == Kind::Ident {
            let lower = t.text.to_ascii_lowercase();
            let suspicious =
                lower.contains("frame") || lower.contains("cycle") || lower.ends_with("gen");
            if suspicious && !ctx.in_test_code(t.line) {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|n| n.is_punct('.'))
                    && toks.get(j + 1).is_some_and(|n| n.kind == Kind::Int)
                {
                    j += 2; // `frame.0 as u32`
                }
                if toks.get(j).is_some_and(|n| n.is_ident("as"))
                    && toks
                        .get(j + 1)
                        .is_some_and(|n| NARROW_INTS.iter().any(|ty| n.is_ident(ty)))
                {
                    push(
                        ctx,
                        out,
                        t.line,
                        "E002",
                        format!(
                            "`{} as {}` silently truncates frame/generation/cycle arithmetic; \
                             use `u64` or a checked conversion",
                            t.text,
                            toks[j + 1].text
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// G — governor pressure signal
// ---------------------------------------------------------------------

/// G001: the free-frame count is the pressure governor's input signal,
/// and it is read in exactly one place — `crates/kernel/src/pressure.rs`
/// (exempted by the scope map). Engine or kernel code that polls
/// `free_frames` directly re-derives pressure without the governor's
/// hysteresis bands, so two call sites can disagree about the band mid-
/// wake and the decision stops being a snapshot-exact pure function of
/// the sampled sequence. Test code is exempt: assertions about free-frame
/// accounting are observations, not throttling decisions.
pub(crate) fn governor(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.tokens {
        if t.kind == Kind::Ident && t.is_ident("free_frames") && !ctx.in_test_code(t.line) {
            push(
                ctx,
                out,
                t.line,
                "G001",
                "`free_frames` is the governor's pressure signal; read band decisions \
                 from PressureGovernor (crates/kernel/src/pressure.rs) so throttling \
                 stays hysteresis-damped and snapshot-exact"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// O — observability (surface latency sampling)
// ---------------------------------------------------------------------

/// O001: latency histograms are fed in exactly one module — the
/// side-channel surface recorder (`crates/obs/src/surface.rs`, exempted
/// by the scope map). A raw `registry.observe(...)` call anywhere else
/// re-invents a latency channel the surface cannot see, so the diffable
/// artifact silently under-reports and two sampling sites can disagree
/// about bucketing. Simulation and harness code goes through typed
/// wrappers like `Obs::observe_fault_latency`. Test code is exempt:
/// asserting on a histogram is an observation, not a new channel.
pub(crate) fn surface(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == Kind::Ident
            && t.is_ident("observe")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !ctx.in_test_code(t.line)
        {
            push(
                ctx,
                out,
                t.line,
                "O001",
                "raw `observe(...)` samples a latency histogram outside the surface \
                 recorder (crates/obs/src/surface.rs); use a typed wrapper like \
                 `Obs::observe_fault_latency` so every sample feeds the canonical \
                 diffable surface"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// S — snapshot coverage
// ---------------------------------------------------------------------

/// The field names a method body references as `self.<field>`, in order
/// of first occurrence, restricted to `declared`.
fn field_refs(ts: &[Token], declared: &BTreeSet<&str>) -> Vec<String> {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut out = Vec::new();
    for w in ts.windows(3) {
        if w[0].is_ident("self") && w[1].is_punct('.') && w[2].kind == Kind::Ident {
            if let Some(&name) = declared.get(w[2].text.as_str()) {
                if seen.insert(name) {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// S001: every field of an `impl Snapshot` type must be written by
/// `save` AND restored by `load` — a field missing from either side is a
/// replay-divergence heisenbug (the state machine silently forks at the
/// first restore). S002: `save` and `load` must visit the fields they
/// share in the same order — the wire format is positional, so an order
/// divergence deserializes one field's bytes into another.
///
/// The struct declaration is resolved same-file first, then as a unique
/// name match across the workspace; ambiguous names are skipped (a
/// name-based resolver must not guess). S001 anchors at the field's
/// declaration line so each derived/host-only exception carries its
/// `// vlint: allow(S001, why)` on the field itself.
pub(crate) fn snapshot_coverage(ws: &WorkspaceCtx<'_, '_>, out: &mut Vec<Finding>) {
    for f in ws.files.iter() {
        if !f.fam.s {
            continue;
        }
        for im in &f.items.impls {
            if im.trait_name.as_deref() != Some("Snapshot") || f.in_test_code(im.line) {
                continue;
            }
            let local = f
                .items
                .structs
                .iter()
                .find(|s| s.name == im.type_name)
                .map(|s| (f, s));
            let resolved = local.or_else(|| {
                let mut hits = ws.files.iter().filter(|o| o.fam.s).flat_map(|o| {
                    o.items
                        .structs
                        .iter()
                        .filter(|s| s.name == im.type_name)
                        .map(move |s| (o, s))
                });
                let first = hits.next();
                if hits.next().is_some() {
                    None
                } else {
                    first
                }
            });
            let Some((sf, strukt)) = resolved else {
                continue;
            };
            let declared: BTreeSet<&str> = strukt.fields.iter().map(|d| d.name.as_str()).collect();
            let save = im.methods.iter().find(|m| m.name == "save");
            let load = im.methods.iter().find(|m| m.name == "load");
            let (Some(save), Some(load)) = (save, load) else {
                continue;
            };
            let save_refs = field_refs(&f.tokens[save.body.0..save.body.1], &declared);
            let load_refs = field_refs(&f.tokens[load.body.0..load.body.1], &declared);

            for field in &strukt.fields {
                let in_save = save_refs.contains(&field.name);
                let in_load = load_refs.contains(&field.name);
                if in_save && in_load {
                    continue;
                }
                let verdict = match (in_save, in_load) {
                    (false, false) => {
                        "is neither written by `Snapshot::save` nor restored by \
                                       `Snapshot::load`"
                    }
                    (false, true) => "is not written by `Snapshot::save`",
                    (true, false) => "is not restored by `Snapshot::load`",
                    _ => unreachable!(),
                };
                out.push(Finding {
                    file: sf.rel.to_string(),
                    line: field.line,
                    rule: "S001",
                    message: format!(
                        "field `{}.{}` {}; replay would diverge at the first restore \
                         (derived/host-only fields carry `// vlint: allow(S001, why)` on their \
                         declaration)",
                        strukt.name, field.name, verdict
                    ),
                });
            }

            // S002 — order divergence over the fields both sides visit.
            let common: BTreeSet<&str> = save_refs
                .iter()
                .filter(|r| load_refs.contains(r))
                .map(|r| r.as_str())
                .collect();
            let a: Vec<&str> = save_refs
                .iter()
                .filter(|r| common.contains(r.as_str()))
                .map(|r| r.as_str())
                .collect();
            let b: Vec<&str> = load_refs
                .iter()
                .filter(|r| common.contains(r.as_str()))
                .map(|r| r.as_str())
                .collect();
            if let Some(k) = (0..a.len().min(b.len())).find(|&k| a[k] != b[k]) {
                out.push(Finding {
                    file: f.rel.to_string(),
                    line: load.line,
                    rule: "S002",
                    message: format!(
                        "`Snapshot` for `{}` diverges from save order: save writes `{}` at \
                         position {} but load restores `{}` there; the wire format is positional",
                        strukt.name,
                        a[k],
                        k + 1,
                        b[k]
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// J — journal coverage
// ---------------------------------------------------------------------

/// J001: every public `&mut self` method on `System`/`Machine` that
/// reaches simulation state must append a journal event — replay
/// reconstructs a run purely from the journal, so an unjournaled public
/// mutator is invisible to replay and the replayed machine forks at that
/// call. "Covered" = the method records itself (calls `record`), is named
/// like the replay dispatcher, or is name-reachable from a covering
/// function (internal steps of a journaled operation are replayed by
/// re-executing the operation). "Reaches simulation state" = the
/// name-closure of its body hits a `&mut self` function in a simulation
/// state crate, or a write-gen/frame-content mutation. Host-only knobs
/// carry `// vlint: allow(J001, host-only — why)`.
pub(crate) fn journal_coverage(ws: &WorkspaceCtx<'_, '_>, out: &mut Vec<Finding>) {
    const STATE_CRATES: &[&str] = &[
        "crates/mem/src/",
        "crates/mmu/src/",
        "crates/cache/src/",
        "crates/dram/src/",
        "crates/core/src/",
    ];

    // Covering functions and everything they reach.
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut seeds: BTreeSet<String> = BTreeSet::new();
    for n in &ws.nodes {
        if n.in_test || !ws.files[n.file].fam.j {
            continue;
        }
        if n.calls.contains("record") || n.name.contains("replay") {
            covered.insert(n.name.clone());
            seeds.extend(n.calls.iter().cloned());
        }
    }
    let (reach_from_covered, _) = ws.closure(&seeds);
    covered.extend(reach_from_covered);

    // Simulation-state sinks. The path clause catches the real tree's
    // state crates; the writes_gen/touches_data clause is scope-agnostic
    // so single-file fixtures exercise the rule too.
    let sinks: BTreeMap<&str, &str> = ws
        .nodes
        .iter()
        .filter(|n| {
            !n.in_test
                && n.takes_mut_self
                && !workspace::is_opaque(&n.name)
                && (STATE_CRATES
                    .iter()
                    .any(|p| ws.files[n.file].rel.starts_with(p))
                    || n.writes_gen
                    || n.touches_data)
        })
        .map(|n| (n.name.as_str(), ws.files[n.file].rel))
        .collect();

    for f in ws.files.iter() {
        if !f.fam.j {
            continue;
        }
        for im in &f.items.impls {
            if im.trait_name.is_some() || !(im.type_name == "System" || im.type_name == "Machine") {
                continue;
            }
            for m in &im.methods {
                if !m.is_pub || !m.takes_mut_self || f.in_test_code(m.line) {
                    continue;
                }
                // The journaling machinery itself is exempt by name.
                if m.name == "record"
                    || m.name.contains("journal")
                    || m.name.contains("replay")
                    || m.name.contains("restore")
                {
                    continue;
                }
                if covered.contains(&m.name) {
                    continue;
                }
                let body = &f.tokens[m.body.0..m.body.1];
                let mseeds = workspace::call_names(body);
                let (reached, parent) = ws.closure(&mseeds);
                let direct_mutation =
                    workspace::writes_gen(body) || workspace::touches_self_data(body);
                let hit = reached.iter().find(|r| sinks.contains_key(r.as_str()));
                if let Some(sink) = hit {
                    out.push(Finding {
                        file: f.rel.to_string(),
                        line: m.line,
                        rule: "J001",
                        message: format!(
                            "public mutator `{}::{}` reaches simulation state (`{}` in {}) but \
                             appends no journal event; replay cannot reconstruct this call — \
                             journal it with `self.record(...)` or mark it \
                             `// vlint: allow(J001, host-only — why)`",
                            im.type_name,
                            m.name,
                            ws.chain(&parent, sink),
                            sinks[sink.as_str()]
                        ),
                    });
                } else if direct_mutation {
                    out.push(Finding {
                        file: f.rel.to_string(),
                        line: m.line,
                        rule: "J001",
                        message: format!(
                            "public mutator `{}::{}` mutates simulation state directly but \
                             appends no journal event; replay cannot reconstruct this call — \
                             journal it with `self.record(...)` or mark it \
                             `// vlint: allow(J001, host-only — why)`",
                            im.type_name, m.name
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R — RNG/shard discipline
// ---------------------------------------------------------------------

/// Token index one past the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('(') {
            depth += 1;
        } else if tokens[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// The RNG draw surface: any of these reachable from a shard read-phase
/// closure makes artifacts depend on thread count. (`sample` is absent on
/// purpose — it collides with `PressureGovernor::sample`.)
const RNG_NAMES: &[&str] = &[
    "next_u64",
    "next_u32",
    "seed_from_u64",
    "splitmix64",
    "random_range",
    "random_bool",
    "fill_bytes",
    "gen_range",
];

/// R001: no RNG draw, crash poll, or frame mutation reachable from the
/// parallel read phase — the closures handed to the shard runner
/// (`<runner>.run(...)`) execute in scheduling order, so any observable
/// effect inside them would differ by thread count. Effects belong in the
/// serial commit phase, in enumeration order. This is the cross-file
/// generalization of T001: proven by fixpoint reachability over the
/// workspace call graph, not by spotting a literal RNG token in the
/// closure.
pub(crate) fn shard_discipline(ws: &WorkspaceCtx<'_, '_>, out: &mut Vec<Finding>) {
    // name -> what makes it an effect.
    let mut effects: BTreeMap<String, &'static str> = BTreeMap::new();
    for &n in RNG_NAMES {
        effects.insert(n.to_string(), "draws from the RNG");
    }
    for n in &ws.nodes {
        if n.in_test || workspace::is_opaque(&n.name) {
            continue;
        }
        if n.takes_mut_self && (n.writes_gen || n.touches_data) {
            effects
                .entry(n.name.clone())
                .or_insert("mutates frame state");
        }
        if n.name.contains("crash") {
            effects
                .entry(n.name.clone())
                .or_insert("polls the crash injector");
        }
    }

    for f in ws.files.iter() {
        if !f.fam.r {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != Kind::Ident
                || !t.text.contains("runner")
                || f.in_test_code(t.line)
                || !(toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                    && toks.get(i + 2).is_some_and(|n| n.is_ident("run"))
                    && toks.get(i + 3).is_some_and(|n| n.is_punct('(')))
            {
                continue;
            }
            let args_end = matching_paren(toks, i + 3);
            let mut j = i + 4;
            while j < args_end {
                if !toks[j].is_punct('|') {
                    j += 1;
                    continue;
                }
                let pipe_line = toks[j].line;
                // Closure params run to the closing `|`.
                let mut k = j + 1;
                while k < args_end && !toks[k].is_punct('|') {
                    k += 1;
                }
                k += 1; // one past the closing `|`
                        // Body: a braced block, or an expression up to the
                        // argument list's next depth-0 comma (or its `)`).
                let body_end = if toks.get(k).is_some_and(|n| n.is_punct('{')) {
                    matching_brace(toks, k)
                } else {
                    let mut depth = 0i32;
                    let mut e = k;
                    while e < args_end - 1 {
                        let t = &toks[e];
                        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                            depth -= 1;
                        } else if t.is_punct(',') && depth == 0 {
                            break;
                        }
                        e += 1;
                    }
                    e
                };
                let seeds = workspace::call_names(&toks[k..body_end]);
                let (reached, parent) = ws.closure(&seeds);
                if let Some(effect) = reached.iter().find(|r| effects.contains_key(r.as_str())) {
                    out.push(Finding {
                        file: f.rel.to_string(),
                        line: pipe_line,
                        rule: "R001",
                        message: format!(
                            "shard read-phase closure reaches `{}`, which {}; effects execute \
                             in scheduling order here — move them to the serial commit phase \
                             (after the runner joins)",
                            ws.chain(&parent, effect),
                            effects[effect.as_str()]
                        ),
                    });
                }
                j = body_end.max(j + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{analyze_source, Families};

    fn rules(src: &str) -> Vec<(&'static str, u32)> {
        analyze_source("crates/mem/src/x.rs", src, Families::ALL)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d_rules_fire_on_the_catalog() {
        assert_eq!(
            rules("use std::time::Instant;"),
            vec![("D001", 1), ("D001", 1)]
        );
        assert_eq!(rules("let t = Instant::now();"), vec![("D001", 1)]);
        assert_eq!(rules("let m: HashMap<u32, u32>;"), vec![("D002", 1)]);
        assert_eq!(rules("let v = env::var(\"SEED\");"), vec![("D003", 1)]);
        assert_eq!(
            rules("#[cfg(target_os = \"linux\")]\nfn f() {}"),
            vec![("D004", 1)]
        );
    }

    #[test]
    fn d_rules_ignore_lookalikes() {
        assert!(rules("let k = InstantKind::Virtual;").is_empty());
        assert!(rules("let p = Phase::Instant(kind);").is_empty());
        assert!(rules("// HashMap\nlet s = \"SystemTime\";").is_empty());
        assert!(rules("#[cfg(feature = \"slow-tests\")]\nfn f() {}").is_empty());
        assert!(rules("#[cfg(not(test))]\nfn f() {}").is_empty());
    }

    #[test]
    fn t_rule_fires_on_host_threads() {
        assert_eq!(rules("use std::thread;"), vec![("T001", 1)]);
        assert_eq!(rules("let h = thread::spawn(f);"), vec![("T001", 1)]);
        assert_eq!(rules("std::thread::scope(|s| {});"), vec![("T001", 1)]);
        assert!(rules("runner.set_threads(4);").is_empty());
        assert!(rules("let threads = cfg.threads.max(1);").is_empty());
    }

    #[test]
    fn w_rule_needs_a_transitive_bump() {
        let bad = "
struct M { data: Vec<u8>, write_gen: u64 }
impl M {
    fn poke(&mut self) { self.data[0] = 1; }
}";
        assert_eq!(rules(bad), vec![("W001", 4)]);
        let good_direct = "
struct M { data: Vec<u8>, write_gen: u64 }
impl M {
    fn poke(&mut self) { self.data[0] = 1; self.write_gen = self.write_gen + 1; }
}";
        assert!(rules(good_direct).is_empty());
        let good_transitive = "
struct M { data: Vec<u8>, write_gen: u64 }
impl M {
    fn mark(&mut self) { self.info.write_gen = 1; }
    fn relay(&mut self) { self.mark(); }
    fn poke(&mut self) { self.data[0] = 1; self.relay(); }
}";
        assert!(rules(good_transitive).is_empty());
    }

    #[test]
    fn w_rule_stays_quiet_without_write_gen_protocol() {
        // A file with an unrelated `data` field is not in the protocol.
        let src = "
struct Pool { data: Vec<u8> }
impl Pool {
    fn poke(&mut self) { self.data[0] = 1; }
}";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn p_rules_fire_outside_mmu() {
        assert_eq!(rules("fn f(pte: u64) {}"), vec![("P001", 1)]);
        assert_eq!(rules("let r = 1u64 << 51;"), vec![("P001", 1)]);
        assert_eq!(rules("let x = pte & 0xfff;"), vec![("P001", 1)]);
        assert_eq!(rules("let f = PteFlags::from_bits(7);"), vec![("P002", 1)]);
        assert_eq!(rules("let w = leaf.pte.to_bits();"), vec![("P002", 1)]);
    }

    #[test]
    fn p_rules_accept_typed_api_and_f64_bits() {
        assert!(rules("let f = pte.flags() & !PteFlags::HUGE;").is_empty());
        assert!(rules("let b = value.to_bits(); let v = f64::from_bits(b);").is_empty());
    }

    #[test]
    fn e001_respects_docs_and_tests() {
        assert_eq!(rules("fn f() { panic!(\"boom\"); }"), vec![("E001", 1)]);
        let documented = "
/// Does a thing.
///
/// # Panics
///
/// Panics when the thing is off.
fn f() { assert!(on, \"off\"); }";
        assert!(rules(documented).is_empty());
        let tested = "#[cfg(test)]\nmod tests {\n  fn f() { panic!(\"fine\"); }\n}";
        assert!(rules(tested).is_empty());
        assert!(rules("fn f() { debug_assert!(x > 0); }").is_empty());
    }

    #[test]
    fn o001_confines_latency_sampling() {
        assert_eq!(
            rules("self.metrics.observe(\"fault.latency_ns\", dt);"),
            vec![("O001", 1)]
        );
        assert_eq!(rules("r.observe(name, v);"), vec![("O001", 1)]);
        assert!(rules("obs.observe_fault_latency(dt as f64);").is_empty());
        assert!(rules("let h = machine.observed_hash(frame);").is_empty());
        let tested = "#[cfg(test)]\nmod tests {\n  fn f() { r.observe(\"h\", 1.0); }\n}";
        assert!(rules(tested).is_empty());
    }

    #[test]
    fn s001_catches_missing_round_trip() {
        let bad = "
struct W { a: u64, cursor: u64 }
impl Snapshot for W {
    fn save(&self, w: &mut Writer) { w.u64(self.a); }
    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.a = r.u64()?;
        Ok(())
    }
}";
        assert_eq!(rules(bad), vec![("S001", 2)]);
        let good = "
struct W { a: u64, cursor: u64 }
impl Snapshot for W {
    fn save(&self, w: &mut Writer) { w.u64(self.a); w.u64(self.cursor); }
    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.a = r.u64()?;
        self.cursor = r.u64()?;
        Ok(())
    }
}";
        assert!(rules(good).is_empty());
    }

    #[test]
    fn s001_allow_sits_on_the_field_declaration() {
        let allowed = "
struct W {
    a: u64,
    // vlint: allow(S001, derived cache — rebuilt on load)
    memo: u64,
}
impl Snapshot for W {
    fn save(&self, w: &mut Writer) { w.u64(self.a); }
    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.a = r.u64()?;
        Ok(())
    }
}";
        assert!(rules(allowed).is_empty());
    }

    #[test]
    fn s002_catches_order_divergence() {
        let bad = "
struct P { a: u64, b: u64 }
impl Snapshot for P {
    fn save(&self, w: &mut Writer) { w.u64(self.a); w.u64(self.b); }
    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.b = r.u64()?;
        self.a = r.u64()?;
        Ok(())
    }
}";
        assert_eq!(rules(bad), vec![("S002", 5)]);
    }

    #[test]
    fn j001_needs_a_journal_event_on_public_mutators() {
        let bad = "
struct Machine { data: Vec<u8> }
impl Machine {
    pub fn hammer(&mut self, b: u8) { self.poke(b) }
    fn poke(&mut self, b: u8) { self.data[0] = b; }
}";
        assert_eq!(rules(bad), vec![("J001", 4)]);
        let good = "
struct Machine { data: Vec<u8> }
impl Machine {
    pub fn hammer(&mut self, b: u8) {
        self.record(b);
        self.poke(b)
    }
    pub fn record(&mut self, b: u8) { self.log.push(b) }
    fn poke(&mut self, b: u8) { self.data[0] = b; self.info.write_gen = 1; }
}";
        assert!(rules(good).is_empty());
    }

    #[test]
    fn r001_proves_reachability_into_shard_closures() {
        let bad = "
impl Scanner {
    fn draw(&mut self) -> u64 { self.rng.next_u64() }
    fn scan(&mut self, frames: &[u64]) {
        let out = self.runner.run(frames, |_, &f| self.draw() ^ f);
    }
}";
        assert_eq!(rules(bad), vec![("R001", 5)]);
        let good = "
impl Scanner {
    fn scan(&mut self, frames: &[u64]) {
        let hashes = self.runner.run(frames, |_, &f| view.hash_page(f));
        let salt = self.rng.next_u64();
    }
}";
        assert!(rules(good).is_empty());
    }

    #[test]
    fn e002_catches_narrowing_casts() {
        assert_eq!(rules("let x = frame as u32;"), vec![("E002", 1)]);
        assert_eq!(rules("let x = frame.0 as u16;"), vec![("E002", 1)]);
        assert_eq!(rules("let g = write_gen as u8;"), vec![("E002", 1)]);
        assert!(rules("let x = frame.0 as usize;").is_empty());
        assert!(rules("let x = frame as u64;").is_empty());
        assert!(rules("let x = engine as u32;").is_empty());
    }
}
