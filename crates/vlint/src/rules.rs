//! The rule catalog. Each family is one pass over a file's token stream
//! (plus, for W-rules, a local call-graph fixpoint).
//!
//! Rules are deliberately token-level, not type-level: they trade a
//! little precision for zero dependencies and total determinism, and the
//! `// vlint: allow(RULE, reason)` escape hatch absorbs the (rare,
//! documented) false positives.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Kind, Token};
use crate::{FileCtx, Finding};

fn push(ctx: &FileCtx<'_>, out: &mut Vec<Finding>, line: u32, rule: &'static str, msg: String) {
    out.push(Finding {
        file: ctx.rel.to_string(),
        line,
        rule,
        message: msg,
    });
}

/// Whether `tokens[i..]` starts the path segment `a :: b` for any `b` in
/// `tails`. Returns the matched tail.
fn path_seg<'t>(tokens: &'t [Token], i: usize, head: &str, tails: &[&str]) -> Option<&'t Token> {
    if tokens.get(i)?.is_ident(head)
        && tokens.get(i + 1)?.is_punct(':')
        && tokens.get(i + 2)?.is_punct(':')
    {
        let t = tokens.get(i + 3)?;
        if tails.iter().any(|s| t.is_ident(s)) {
            return Some(t);
        }
    }
    None
}

// ---------------------------------------------------------------------
// D — determinism
// ---------------------------------------------------------------------

/// D001 wall-clock time, D002 randomized-order collections, D003
/// environment reads, D004 platform-conditional compilation.
pub(crate) fn determinism(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // D001 — wall-clock time. `Instant`/`SystemTime` count only in
        // clock-like positions — imported from a `time` path or used as
        // `Instant::now()` etc. The tracer's own `Phase::Instant` variant
        // and `InstantKind` are simulator vocabulary and stay legal.
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            let from_time_path = i >= 3
                && toks[i - 3].is_ident("time")
                && toks[i - 2].is_punct(':')
                && toks[i - 1].is_punct(':');
            let clock_call = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| {
                    n.is_ident("now")
                        || n.is_ident("elapsed")
                        || n.is_ident("duration_since")
                        || n.is_ident("UNIX_EPOCH")
                });
            if from_time_path || clock_call {
                push(
                    ctx,
                    out,
                    t.line,
                    "D001",
                    format!(
                        "`{}` reads the host clock; simulation time comes from the machine's \
                         cycle counter",
                        t.text
                    ),
                );
            }
        }
        if path_seg(toks, i, "std", &["time"]).is_some() {
            push(
                ctx,
                out,
                t.line,
                "D001",
                "`std::time` is host wall-clock; simulation time comes from the machine's \
                 cycle counter"
                    .to_string(),
            );
        }
        // D002 — hash collections iterate in randomized order.
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push(
                ctx,
                out,
                t.line,
                "D002",
                format!(
                    "`{}` iterates in randomized order; use BTreeMap/BTreeSet (or a Vec) so \
                     every run of a seed is identical",
                    t.text
                ),
            );
        }
        // D003 — environment reads make behavior depend on the host.
        if let Some(m) = path_seg(toks, i, "env", &["var", "var_os", "vars", "vars_os"]) {
            push(
                ctx,
                out,
                t.line,
                "D003",
                format!(
                    "`env::{}` makes simulation behavior depend on the host environment; \
                     thread configuration through explicit config structs",
                    m.text
                ),
            );
        }
        // D004 — platform-conditional simulation behavior (attributes and
        // the `cfg!(...)` macro alike).
        let cfg_open = if t.is_ident("cfg") {
            if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                i + 2
            } else {
                i + 1
            }
        } else {
            usize::MAX
        };
        if cfg_open != usize::MAX && toks.get(cfg_open).is_some_and(|n| n.is_punct('(')) {
            let mut j = cfg_open + 1;
            let mut depth = 1usize;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                } else if depth > 0 {
                    const PLATFORM: &[&str] = &[
                        "target_os",
                        "target_arch",
                        "target_family",
                        "target_endian",
                        "target_pointer_width",
                        "unix",
                        "windows",
                    ];
                    if PLATFORM.iter().any(|p| toks[j].is_ident(p)) {
                        push(
                            ctx,
                            out,
                            toks[j].line,
                            "D004",
                            format!(
                                "platform-conditional `cfg({})` in a simulation crate: results \
                                 must not depend on the host platform",
                                toks[j].text
                            ),
                        );
                    }
                }
                j += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// T — threading
// ---------------------------------------------------------------------

/// T001: host threads in a determinism crate. Engine-side parallelism
/// goes through the approved shard runner (`crates/core/src/shard.rs`,
/// which carries the one allow annotation), whose pre-partitioned work
/// and enumeration-order reduction keep every artifact byte-identical at
/// any worker count; ad-hoc `std::thread` use reintroduces scheduling
/// order as a hidden input. The campaign driver's whole-run fan-out
/// (each worker owns entire deterministic runs) is baselined.
pub(crate) fn threading(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // `std::thread` by full path (imports and inline paths alike).
        if path_seg(toks, i, "std", &["thread"]).is_some() {
            push(
                ctx,
                out,
                t.line,
                "T001",
                "`std::thread` spawns host threads in a determinism crate; scan \
                 parallelism goes through the shard runner (crates/core/src/shard.rs) \
                 so artifacts stay byte-identical at any worker count"
                    .to_string(),
            );
            continue;
        }
        // `thread::spawn` / `thread::scope` / `thread::Builder` after a
        // `use std::thread`. Skip when preceded by `::` — that is the
        // tail of a `std::thread::...` path already reported above.
        let path_tail = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        if !path_tail {
            if let Some(m) = path_seg(toks, i, "thread", &["spawn", "scope", "Builder"]) {
                push(
                    ctx,
                    out,
                    t.line,
                    "T001",
                    format!(
                        "`thread::{}` spawns host threads in a determinism crate; scan \
                         parallelism goes through the shard runner \
                         (crates/core/src/shard.rs) so artifacts stay byte-identical \
                         at any worker count",
                        m.text
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// W — write-gen coherence
// ---------------------------------------------------------------------

/// W001: a `&mut self` function that reaches the frame-content store
/// (`self.data`) must bump a write generation — either directly (a
/// `.write_gen = ...` assignment in its body) or by calling, possibly
/// transitively, a local function that does. The rule only engages in
/// files that participate in the write-gen protocol at all (mention the
/// `write_gen` identifier), so unrelated `data` fields elsewhere in the
/// crate do not trip it.
pub(crate) fn write_gen(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    if !toks.iter().any(|t| t.is_ident("write_gen")) {
        return;
    }

    let body = |f: &crate::FnInfo| &toks[f.body.0..f.body.1];
    let mentions_self_data = |ts: &[Token]| {
        ts.windows(3)
            .any(|w| w[0].is_ident("self") && w[1].is_punct('.') && w[2].is_ident("data"))
    };
    let writes_gen = |ts: &[Token]| {
        ts.windows(3)
            .any(|w| w[0].is_punct('.') && w[1].is_ident("write_gen") && w[2].is_punct('='))
    };
    let calls = |ts: &[Token]| -> BTreeSet<String> {
        ts.windows(2)
            .filter(|w| w[0].kind == Kind::Ident && w[1].is_punct('('))
            .map(|w| w[0].text.clone())
            .collect()
    };

    // Fixpoint: a function "bumps" if it writes `.write_gen = ...` itself
    // or calls a local bumper.
    let mut bumpers: BTreeSet<&str> = ctx
        .fns
        .iter()
        .filter(|f| writes_gen(body(f)))
        .map(|f| f.name.as_str())
        .collect();
    let call_map: BTreeMap<&str, BTreeSet<String>> = ctx
        .fns
        .iter()
        .map(|f| (f.name.as_str(), calls(body(f))))
        .collect();
    loop {
        let before = bumpers.len();
        for f in &ctx.fns {
            if !bumpers.contains(f.name.as_str())
                && call_map[f.name.as_str()]
                    .iter()
                    .any(|c| bumpers.contains(c.as_str()))
            {
                bumpers.insert(f.name.as_str());
            }
        }
        if bumpers.len() == before {
            break;
        }
    }

    for f in &ctx.fns {
        if ctx.in_test_code(f.line) {
            continue;
        }
        if f.takes_mut_self && mentions_self_data(body(f)) && !bumpers.contains(f.name.as_str()) {
            push(
                ctx,
                out,
                f.line,
                "W001",
                format!(
                    "`{}` takes `&mut self` and reaches frame contents (`self.data`) but never \
                     bumps a write generation; stale memoized hashes would survive the mutation",
                    f.name
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// P — PTE typing
// ---------------------------------------------------------------------

const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn ident_has(t: &Token, needle: &str) -> bool {
    t.kind == Kind::Ident && t.text.to_ascii_lowercase().contains(needle)
}

/// P001 raw `u64` PTE manipulation outside `vusion-mmu`; P002 use of the
/// `bits`/`from_bits`/`to_bits` escape hatches outside `vusion-mmu`.
pub(crate) fn pte_typing(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // P001a — a binding/param/field named like a PTE typed as a raw
        // word: `pte: u64` (but not the path `pte::...`).
        if ident_has(t, "pte")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("u64"))
        {
            push(
                ctx,
                out,
                t.line,
                "P001",
                format!(
                    "`{}` is a raw `u64` page-table word; outside vusion-mmu use the typed \
                     `Pte`/`PteFlags` API",
                    t.text
                ),
            );
        }
        // P001b — the reserved-bit magic constant: `... << 51`.
        if t.is_punct('<')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('<'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == Kind::Int && n.text == "51")
        {
            push(
                ctx,
                out,
                t.line,
                "P001",
                "shifting into bit 51 re-derives the reserved-bit trap by hand; use \
                 `PteFlags::RESERVED`"
                    .to_string(),
            );
        }
        // P001c — bit-operating a PTE-named value against an integer
        // literal: `pte & 0xfff`, `pte.0 | 4`, `raw_pte ^ 1`.
        if ident_has(t, "pte") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct('.'))
                && toks.get(j + 1).is_some_and(|n| n.kind == Kind::Int)
            {
                j += 2; // tuple-field access like `pte.0`
            }
            let op = toks
                .get(j)
                .filter(|n| n.is_punct('|') || n.is_punct('&') || n.is_punct('^'));
            let shift = toks
                .get(j)
                .filter(|n| n.is_punct('<') || n.is_punct('>'))
                .and_then(|n| toks.get(j + 1).filter(|m| m.text == n.text));
            let rhs = if op.is_some() {
                toks.get(j + 1)
            } else if shift.is_some() {
                toks.get(j + 2)
            } else {
                None
            };
            if rhs.is_some_and(|r| r.kind == Kind::Int) {
                push(
                    ctx,
                    out,
                    t.line,
                    "P001",
                    format!(
                        "raw bit arithmetic on `{}`; outside vusion-mmu PTE bits are only \
                         touched through `PteFlags` masks",
                        t.text
                    ),
                );
            }
        }
        // P002a — the escape-hatch constructors by path.
        if (t.is_ident("Pte") || t.is_ident("PteFlags"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| {
                n.is_ident("from_bits") || n.is_ident("to_bits") || n.is_ident("bits")
            })
        {
            push(
                ctx,
                out,
                t.line,
                "P002",
                format!(
                    "`{}::{}` is the raw-bits escape hatch; it is reserved for vusion-mmu's \
                     own encoding and snapshot wire formats",
                    t.text,
                    toks[i + 3].text
                ),
            );
        }
        // P002b — method-call form on something PTE-ish nearby:
        // `leaf.pte.to_bits()`, `flags.bits()`.
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("to_bits") || n.is_ident("bits"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let lookback = toks[i.saturating_sub(8)..i].iter();
            if lookback
                .filter(|b| b.kind == Kind::Ident)
                .any(|b| ident_has(b, "pte") || ident_has(b, "flag"))
            {
                push(
                    ctx,
                    out,
                    t.line,
                    "P002",
                    format!(
                        "`.{}()` on a PTE value leaks the raw word outside vusion-mmu; use \
                         the typed accessors",
                        toks[i + 1].text
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// E — error policy
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// E001 undocumented panics in simulation code; E002 silently-truncating
/// casts on frame/generation/cycle arithmetic.
pub(crate) fn error_policy(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // E001 — panic-family macro invocation. Test code is exempt
        // (including `#[cfg(test)]` mods and `#[cfg(debug_assertions)]`
        // blocks); `debug_assert*` never matches; a function whose doc
        // comment carries a `# Panics` section has declared the contract.
        if t.kind == Kind::Ident
            && PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && !ctx.in_test_code(t.line)
        {
            let documented = ctx.enclosing_fn(i).is_some_and(|f| f.has_panics_doc);
            if !documented {
                push(
                    ctx,
                    out,
                    t.line,
                    "E001",
                    format!(
                        "`{}!` in simulation code: either document the contract with a \
                         `# Panics` doc section, demote to `debug_assert!`, or return an error",
                        t.text
                    ),
                );
            }
        }
        // E002 — `frame as u32`-style truncation. Frame numbers,
        // generations, and cycle counts are u64 end to end; a narrowing
        // `as` silently wraps. (usize is excluded: index casts are fine.)
        if t.kind == Kind::Ident {
            let lower = t.text.to_ascii_lowercase();
            let suspicious =
                lower.contains("frame") || lower.contains("cycle") || lower.ends_with("gen");
            if suspicious && !ctx.in_test_code(t.line) {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|n| n.is_punct('.'))
                    && toks.get(j + 1).is_some_and(|n| n.kind == Kind::Int)
                {
                    j += 2; // `frame.0 as u32`
                }
                if toks.get(j).is_some_and(|n| n.is_ident("as"))
                    && toks
                        .get(j + 1)
                        .is_some_and(|n| NARROW_INTS.iter().any(|ty| n.is_ident(ty)))
                {
                    push(
                        ctx,
                        out,
                        t.line,
                        "E002",
                        format!(
                            "`{} as {}` silently truncates frame/generation/cycle arithmetic; \
                             use `u64` or a checked conversion",
                            t.text,
                            toks[j + 1].text
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// G — governor pressure signal
// ---------------------------------------------------------------------

/// G001: the free-frame count is the pressure governor's input signal,
/// and it is read in exactly one place — `crates/kernel/src/pressure.rs`
/// (exempted by the scope map). Engine or kernel code that polls
/// `free_frames` directly re-derives pressure without the governor's
/// hysteresis bands, so two call sites can disagree about the band mid-
/// wake and the decision stops being a snapshot-exact pure function of
/// the sampled sequence. Test code is exempt: assertions about free-frame
/// accounting are observations, not throttling decisions.
pub(crate) fn governor(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.tokens {
        if t.kind == Kind::Ident && t.is_ident("free_frames") && !ctx.in_test_code(t.line) {
            push(
                ctx,
                out,
                t.line,
                "G001",
                "`free_frames` is the governor's pressure signal; read band decisions \
                 from PressureGovernor (crates/kernel/src/pressure.rs) so throttling \
                 stays hysteresis-damped and snapshot-exact"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// S — surface latency sampling
// ---------------------------------------------------------------------

/// S001: latency histograms are fed in exactly one module — the
/// side-channel surface recorder (`crates/obs/src/surface.rs`, exempted
/// by the scope map). A raw `registry.observe(...)` call anywhere else
/// re-invents a latency channel the surface cannot see, so the diffable
/// artifact silently under-reports and two sampling sites can disagree
/// about bucketing. Simulation and harness code goes through typed
/// wrappers like `Obs::observe_fault_latency`. Test code is exempt:
/// asserting on a histogram is an observation, not a new channel.
pub(crate) fn surface(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == Kind::Ident
            && t.is_ident("observe")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !ctx.in_test_code(t.line)
        {
            push(
                ctx,
                out,
                t.line,
                "S001",
                "raw `observe(...)` samples a latency histogram outside the surface \
                 recorder (crates/obs/src/surface.rs); use a typed wrapper like \
                 `Obs::observe_fault_latency` so every sample feeds the canonical \
                 diffable surface"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{analyze_source, Families};

    fn rules(src: &str) -> Vec<(&'static str, u32)> {
        analyze_source("crates/mem/src/x.rs", src, Families::ALL)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d_rules_fire_on_the_catalog() {
        assert_eq!(
            rules("use std::time::Instant;"),
            vec![("D001", 1), ("D001", 1)]
        );
        assert_eq!(rules("let t = Instant::now();"), vec![("D001", 1)]);
        assert_eq!(rules("let m: HashMap<u32, u32>;"), vec![("D002", 1)]);
        assert_eq!(rules("let v = env::var(\"SEED\");"), vec![("D003", 1)]);
        assert_eq!(
            rules("#[cfg(target_os = \"linux\")]\nfn f() {}"),
            vec![("D004", 1)]
        );
    }

    #[test]
    fn d_rules_ignore_lookalikes() {
        assert!(rules("let k = InstantKind::Virtual;").is_empty());
        assert!(rules("let p = Phase::Instant(kind);").is_empty());
        assert!(rules("// HashMap\nlet s = \"SystemTime\";").is_empty());
        assert!(rules("#[cfg(feature = \"slow-tests\")]\nfn f() {}").is_empty());
        assert!(rules("#[cfg(not(test))]\nfn f() {}").is_empty());
    }

    #[test]
    fn t_rule_fires_on_host_threads() {
        assert_eq!(rules("use std::thread;"), vec![("T001", 1)]);
        assert_eq!(rules("let h = thread::spawn(f);"), vec![("T001", 1)]);
        assert_eq!(rules("std::thread::scope(|s| {});"), vec![("T001", 1)]);
        assert!(rules("runner.set_threads(4);").is_empty());
        assert!(rules("let threads = cfg.threads.max(1);").is_empty());
    }

    #[test]
    fn w_rule_needs_a_transitive_bump() {
        let bad = "
struct M { data: Vec<u8>, write_gen: u64 }
impl M {
    fn poke(&mut self) { self.data[0] = 1; }
}";
        assert_eq!(rules(bad), vec![("W001", 4)]);
        let good_direct = "
struct M { data: Vec<u8>, write_gen: u64 }
impl M {
    fn poke(&mut self) { self.data[0] = 1; self.write_gen = self.write_gen + 1; }
}";
        assert!(rules(good_direct).is_empty());
        let good_transitive = "
struct M { data: Vec<u8>, write_gen: u64 }
impl M {
    fn mark(&mut self) { self.info.write_gen = 1; }
    fn relay(&mut self) { self.mark(); }
    fn poke(&mut self) { self.data[0] = 1; self.relay(); }
}";
        assert!(rules(good_transitive).is_empty());
    }

    #[test]
    fn w_rule_stays_quiet_without_write_gen_protocol() {
        // A file with an unrelated `data` field is not in the protocol.
        let src = "
struct Pool { data: Vec<u8> }
impl Pool {
    fn poke(&mut self) { self.data[0] = 1; }
}";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn p_rules_fire_outside_mmu() {
        assert_eq!(rules("fn f(pte: u64) {}"), vec![("P001", 1)]);
        assert_eq!(rules("let r = 1u64 << 51;"), vec![("P001", 1)]);
        assert_eq!(rules("let x = pte & 0xfff;"), vec![("P001", 1)]);
        assert_eq!(rules("let f = PteFlags::from_bits(7);"), vec![("P002", 1)]);
        assert_eq!(rules("let w = leaf.pte.to_bits();"), vec![("P002", 1)]);
    }

    #[test]
    fn p_rules_accept_typed_api_and_f64_bits() {
        assert!(rules("let f = pte.flags() & !PteFlags::HUGE;").is_empty());
        assert!(rules("let b = value.to_bits(); let v = f64::from_bits(b);").is_empty());
    }

    #[test]
    fn e001_respects_docs_and_tests() {
        assert_eq!(rules("fn f() { panic!(\"boom\"); }"), vec![("E001", 1)]);
        let documented = "
/// Does a thing.
///
/// # Panics
///
/// Panics when the thing is off.
fn f() { assert!(on, \"off\"); }";
        assert!(rules(documented).is_empty());
        let tested = "#[cfg(test)]\nmod tests {\n  fn f() { panic!(\"fine\"); }\n}";
        assert!(rules(tested).is_empty());
        assert!(rules("fn f() { debug_assert!(x > 0); }").is_empty());
    }

    #[test]
    fn s001_confines_latency_sampling() {
        assert_eq!(
            rules("self.metrics.observe(\"fault.latency_ns\", dt);"),
            vec![("S001", 1)]
        );
        assert_eq!(rules("r.observe(name, v);"), vec![("S001", 1)]);
        assert!(rules("obs.observe_fault_latency(dt as f64);").is_empty());
        assert!(rules("let h = machine.observed_hash(frame);").is_empty());
        let tested = "#[cfg(test)]\nmod tests {\n  fn f() { r.observe(\"h\", 1.0); }\n}";
        assert!(rules(tested).is_empty());
    }

    #[test]
    fn e002_catches_narrowing_casts() {
        assert_eq!(rules("let x = frame as u32;"), vec![("E002", 1)]);
        assert_eq!(rules("let x = frame.0 as u16;"), vec![("E002", 1)]);
        assert_eq!(rules("let g = write_gen as u8;"), vec![("E002", 1)]);
        assert!(rules("let x = frame.0 as usize;").is_empty());
        assert!(rules("let x = frame as u64;").is_empty());
        assert!(rules("let x = engine as u32;").is_empty());
    }
}
