//! The rule catalog: one entry per rule with the one-line summary used
//! by `vlint rules`, the rationale and minimal bad/ok pair used by
//! `vlint explain RULE`, and nothing generated — the doc-sync test
//! (`tests/doc_sync.rs`) cross-checks these IDs against DESIGN.md §11 so
//! the catalog, the CLI, and the documentation cannot drift apart.

/// Documentation for one rule.
pub struct RuleDoc {
    pub id: &'static str,
    /// One line for the `rules` listing.
    pub summary: &'static str,
    /// A short paragraph for `explain`.
    pub rationale: &'static str,
    /// Minimal code that trips the rule.
    pub bad: &'static str,
    /// Minimal code that satisfies it.
    pub ok: &'static str,
}

/// Every rule, in catalog order.
pub const RULES: &[RuleDoc] = &[
    RuleDoc {
        id: "D001",
        summary: "no host wall-clock (std::time, Instant, SystemTime) in simulation crates",
        rationale: "Simulation time comes from the machine's cycle counter; reading the host \
                    clock makes a run's artifacts depend on when and where it executed, so no \
                    figure could be reproduced from its seed.",
        bad: "let t0 = Instant::now();",
        ok: "let t0 = machine.now_ns();",
    },
    RuleDoc {
        id: "D002",
        summary: "no randomized-order collections (HashMap/HashSet); use BTreeMap/BTreeSet",
        rationale: "std's hash collections iterate in a per-process randomized order, so any \
                    artifact built by iterating one differs run to run. BTree collections (or a \
                    Vec) make iteration order a pure function of the keys.",
        bad: "let mut seen: HashMap<u64, u32> = HashMap::new();",
        ok: "let mut seen: BTreeMap<u64, u32> = BTreeMap::new();",
    },
    RuleDoc {
        id: "D003",
        summary: "no environment reads (env::var) in simulation crates",
        rationale: "An environment read is a hidden config input: two runs of the same seed can \
                    diverge because of the shell they started from. Configuration travels \
                    through explicit config structs that snapshots capture.",
        bad: "let threads = env::var(\"THREADS\").unwrap();",
        ok: "let threads = cfg.threads;",
    },
    RuleDoc {
        id: "D004",
        summary: "no platform-conditional compilation (cfg(target_os/unix/windows/...))",
        rationale: "A cfg(target_os)/cfg(unix) branch means the simulation behaves differently \
                    per platform, so artifacts stop being comparable across machines. Platform \
                    adaptation belongs in the host-side harness, not simulation crates.",
        bad: "#[cfg(target_os = \"linux\")]\nfn flush() { /* ... */ }",
        ok: "fn flush() { /* same behavior everywhere */ }",
    },
    RuleDoc {
        id: "T001",
        summary: "host threads only via the approved shard runner (crates/core/src/shard.rs)",
        rationale: "Ad-hoc std::thread use reintroduces scheduling order as a hidden input. The \
                    shard runner pre-partitions work and reduces in enumeration order, so worker \
                    count changes wall-clock time and nothing else.",
        bad: "let h = std::thread::spawn(move || scan(frames));",
        ok: "let hashes = runner.run(&frames, |_, &f| view.hash_page(f));",
    },
    RuleDoc {
        id: "W001",
        summary: "&mut self code reaching frame contents must bump a write generation",
        rationale: "Page hashes are memoized against a frame's write generation. A mutation \
                    path that touches frame contents (self.data) without bumping the generation \
                    leaves a stale hash in the memo: the scanner would keep trusting a hash of \
                    bytes that no longer exist. Checked transitively over the workspace call \
                    graph: calling a bumper (possibly through another file) satisfies the rule.",
        bad: "fn poke(&mut self) { self.data[0] = 1; }",
        ok: "fn poke(&mut self) { self.data[0] = 1; self.write_gen = self.write_gen + 1; }",
    },
    RuleDoc {
        id: "P001",
        summary: "no raw u64 PTE bit arithmetic outside vusion-mmu; use Pte/PteFlags",
        rationale: "The S+F trap encoding lives in one place. Raw `pte & 0xfff`-style \
                    arithmetic outside vusion-mmu re-derives bit positions by hand and silently \
                    diverges when the layout changes.",
        bad: "let present = pte & 0x1;",
        ok: "let present = pte.flags().contains(PteFlags::PRESENT);",
    },
    RuleDoc {
        id: "P002",
        summary: "bits/from_bits/to_bits escape hatches stay inside vusion-mmu",
        rationale: "The raw-bits constructors exist for vusion-mmu's own encoding and the \
                    snapshot wire format. Anywhere else they bypass the typed API and can \
                    fabricate PTE states the MMU never produces.",
        bad: "let pte = Pte::from_bits(raw);",
        ok: "let pte = Pte::new(frame, PteFlags::PRESENT);",
    },
    RuleDoc {
        id: "E001",
        summary: "no undocumented panic/assert in simulation code (doc `# Panics` or demote)",
        rationale: "A panic in simulation code is a modeling decision (a simulated bus fault, a \
                    broken invariant) and must be part of the documented contract. Undocumented \
                    panics are usually error paths that should return Result or demote to \
                    debug_assert!.",
        bad: "fn frame(&self, f: FrameId) { assert!(f.0 < self.n); }",
        ok: "/// # Panics\n/// Panics if `f` is out of range (the simulator's bus fault).\nfn frame(&self, f: FrameId) { assert!(f.0 < self.n); }",
    },
    RuleDoc {
        id: "E002",
        summary: "no truncating `as` casts on frame/generation/cycle arithmetic",
        rationale: "Frame numbers, write generations, and cycle counts are u64 end to end. A \
                    narrowing `as u32` wraps silently after 2^32 events — precisely the kind of \
                    long-campaign heisenbug DST exists to rule out.",
        bad: "let f = frame as u32;",
        ok: "let f: u64 = frame;",
    },
    RuleDoc {
        id: "G001",
        summary: "free_frames pressure reads stay in the governor (crates/kernel/src/pressure.rs)",
        rationale: "The free-frame count is the pressure governor's input signal. A direct \
                    free_frames poll elsewhere re-derives pressure without the governor's \
                    hysteresis bands, so two call sites can disagree about the band mid-wake \
                    and throttling stops being a pure function of the sampled sequence.",
        bad: "if m.mem().free_frames() < 128 { self.throttle(); }",
        ok: "if governor.decision().band >= PressureBand::High { self.throttle(); }",
    },
    RuleDoc {
        id: "O001",
        summary: "latency sampling stays in the surface recorder (crates/obs/src/surface.rs)",
        rationale: "Latency histograms feed one canonical, diffable side-channel surface \
                    artifact. A raw observe(...) call elsewhere opens a parallel channel the \
                    surface cannot see, so the artifact under-reports and sampling sites can \
                    disagree about bucketing. Use typed wrappers like Obs::observe_fault_latency.",
        bad: "self.metrics.observe(\"fault.latency_ns\", dt);",
        ok: "obs.observe_fault_latency(dt as f64);",
    },
    RuleDoc {
        id: "S001",
        summary: "every field of a snapshotted struct must round-trip through save AND load",
        rationale: "Crash -> restore -> replay converges byte-identically only if every field \
                    of every `impl Snapshot` type survives the round trip. A field missing from \
                    save or load is a replay-divergence heisenbug: the state machine silently \
                    forks at the first restore. Derived or host-only fields carry a reasoned \
                    allow on their declaration line.",
        bad: "struct W { a: u64, cursor: u64 }\nimpl Snapshot for W {\n    fn save(&self, w: &mut Writer) { w.u64(self.a); }\n    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {\n        self.a = r.u64()?; Ok(())\n    }\n}",
        ok: "struct W { a: u64, cursor: u64 }\nimpl Snapshot for W {\n    fn save(&self, w: &mut Writer) { w.u64(self.a); w.u64(self.cursor); }\n    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {\n        self.a = r.u64()?; self.cursor = r.u64()?; Ok(())\n    }\n}",
    },
    RuleDoc {
        id: "S002",
        summary: "save and load must visit a snapshotted struct's fields in the same order",
        rationale: "The snapshot wire format is a positional byte stream: load must read \
                    fields in exactly the order save wrote them. A save/load order divergence \
                    deserializes one field's bytes into another — often silently, when the \
                    types happen to have the same width.",
        bad: "fn save(&self, w: &mut Writer) { w.u64(self.a); w.u64(self.b); }\nfn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {\n    self.b = r.u64()?; self.a = r.u64()?; Ok(())\n}",
        ok: "fn save(&self, w: &mut Writer) { w.u64(self.a); w.u64(self.b); }\nfn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {\n    self.a = r.u64()?; self.b = r.u64()?; Ok(())\n}",
    },
    RuleDoc {
        id: "J001",
        summary: "public &mut self System/Machine methods reaching simulation state are journaled",
        rationale: "Replay reconstructs a run purely from the journal. A public mutator that \
                    changes simulation state without appending an event is invisible to replay: \
                    the replayed machine diverges at that call and every downstream artifact \
                    diff is noise. Methods reachable from a journaled operation (or from the \
                    replay dispatcher) are covered as internal steps; host-only knobs carry \
                    `// vlint: allow(J001, host-only — why)`.",
        bad: "impl Machine {\n    pub fn hammer(&mut self, b: u8) { self.poke(b); }\n}",
        ok: "impl Machine {\n    pub fn hammer(&mut self, b: u8) {\n        self.record(|| JournalEvent::Hammer { b });\n        self.poke(b);\n    }\n}",
    },
    RuleDoc {
        id: "R001",
        summary: "no RNG draw, crash poll, or frame mutation reachable from shard read-phase closures",
        rationale: "The parallel scan phase runs closures over a read-only FrameReadView; every \
                    observable effect — RNG draw, crash poll, frame mutation, trace event — \
                    belongs in the serial commit phase, in enumeration order. An effect \
                    reachable from a shard closure executes in scheduling order, so artifacts \
                    would differ by thread count. Proven by fixpoint reachability over the \
                    workspace call graph (the cross-file generalization of T001).",
        bad: "let out = self.runner.run(&frames, |_, &f| self.rng.next_u64() ^ f.0);",
        ok: "let hashes = self.runner.run(&frames, |_, &f| view.hash_page(f));\nlet salt = self.rng.next_u64(); // serial phase: after the join",
    },
    RuleDoc {
        id: "V001",
        summary: "vlint allow annotations need a reason: // vlint: allow(RULE, why)",
        rationale: "A suppression without a reason is a contract violation with the evidence \
                    deleted. The reason is the reviewable artifact: it says why this site is an \
                    exception (derived field, host-only knob, the one approved thread spawn) so \
                    the next reader can re-check the claim.",
        bad: "// vlint: allow(D002)\nuse std::collections::HashMap;",
        ok: "// vlint: allow(D002, host-side cache keyed by inode — never iterated)\nuse std::collections::HashMap;",
    },
];

/// Looks up a rule by ID (case-insensitive).
pub fn find(id: &str) -> Option<&'static RuleDoc> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            let b = r.id.as_bytes();
            assert_eq!(b.len(), 4, "{} is not LDDD", r.id);
            assert!(b[0].is_ascii_uppercase() && b[1..].iter().all(u8::is_ascii_digit));
            assert!(!r.summary.is_empty() && !r.rationale.is_empty());
            assert!(!r.bad.is_empty() && !r.ok.is_empty());
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert_eq!(find("s001").map(|r| r.id), Some("S001"));
        assert!(find("Z999").is_none());
    }
}
