//! CLI driver: `cargo run -p vlint -- check`.
//!
//! Scans the workspace, prints a human report, optionally writes the
//! findings as deterministic JSON (`--json PATH`, the CI artifact), and
//! exits non-zero when any finding is not covered by the committed
//! baseline (`vlint.baseline.json` at the workspace root). `rules` and
//! `explain RULE` render the catalog (`catalog::RULES`), the single
//! source of truth the doc-sync test holds DESIGN.md §11 against.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vlint::{baseline_keys, catalog, scan_root, to_json, Finding};

const USAGE: &str = "\
usage: vlint <command> [options]

commands:
  check           scan the workspace and report contract violations
  rules           print the rule catalog
  explain RULE    print a rule's rationale with a minimal bad/ok pair

options (check):
  --root DIR      workspace root (default: nearest ancestor with [workspace])
  --json PATH     also write the findings as deterministic JSON
";

/// Renders the `rules` listing from the catalog.
fn rule_listing() -> String {
    let mut out = String::new();
    for r in catalog::RULES {
        out.push_str(r.id);
        out.push_str("  ");
        out.push_str(r.summary);
        out.push('\n');
    }
    out.push_str(
        "\nsuppression: append `// vlint: allow(RULE, reason)` on (or just above) the line\n\
         baseline:    vlint.baseline.json at the workspace root, same JSON schema\n\
         explain:     `vlint explain RULE` for a rule's rationale and a minimal bad/ok pair\n",
    );
    out
}

fn run_explain(id: &str) -> ExitCode {
    let Some(r) = catalog::find(id) else {
        eprintln!("vlint: unknown rule `{id}`; see `vlint rules` for the catalog");
        return ExitCode::from(2);
    };
    println!("{}  {}\n", r.id, r.summary);
    println!("{}\n", r.rationale);
    println!("bad:");
    for line in r.bad.lines() {
        println!("    {line}");
    }
    println!("\nok:");
    for line in r.ok.lines() {
        println!("    {line}");
    }
    ExitCode::SUCCESS
}

/// Nearest ancestor of the current directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run_check(root: &Path, json_out: Option<&Path>) -> ExitCode {
    let findings = match scan_root(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("vlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join("vlint.baseline.json");
    let baseline: Vec<String> = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline_keys(&text),
        Err(_) => Vec::new(),
    };

    let (old, new): (Vec<&Finding>, Vec<&Finding>) = findings
        .iter()
        .partition(|f| baseline.binary_search(&f.key()).is_ok());

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, to_json(&findings)) {
            eprintln!("vlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &new {
        println!("{}:{}: {}: {}", f.file, f.line, f.rule, f.message);
    }
    if new.is_empty() {
        if old.is_empty() {
            println!("vlint: clean ({} findings)", findings.len());
        } else {
            println!(
                "vlint: clean ({} baselined finding{} tolerated)",
                old.len(),
                if old.len() == 1 { "" } else { "s" }
            );
        }
        ExitCode::SUCCESS
    } else {
        println!(
            "vlint: {} new finding{} ({} baselined); see `vlint rules` for the catalog",
            new.len(),
            if new.len() == 1 { "" } else { "s" },
            old.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "rules" => {
            print!("{}", rule_listing());
            ExitCode::SUCCESS
        }
        "explain" | "--explain" => {
            let Some(id) = args.get(1) else {
                eprintln!("vlint: `explain` needs a rule id\n{USAGE}");
                return ExitCode::from(2);
            };
            run_explain(id)
        }
        "check" => {
            let mut root: Option<PathBuf> = None;
            let mut json_out: Option<PathBuf> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--root" if i + 1 < args.len() => {
                        root = Some(PathBuf::from(&args[i + 1]));
                        i += 2;
                    }
                    "--json" if i + 1 < args.len() => {
                        json_out = Some(PathBuf::from(&args[i + 1]));
                        i += 2;
                    }
                    other => {
                        eprintln!("vlint: unknown option `{other}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            let Some(root) = root.or_else(find_workspace_root) else {
                eprintln!("vlint: no workspace root found (run inside the repo or pass --root)");
                return ExitCode::from(2);
            };
            run_check(&root, json_out.as_deref())
        }
        other => {
            eprintln!("vlint: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
