//! Item-level parser: a brace tree over the lexer's token stream.
//!
//! The S/J/R rule families need to know *what* a file declares, not just
//! which identifiers it mentions: which structs exist and in what order
//! their fields are declared, which `impl` blocks implement which trait
//! for which type, and which methods are public `&mut self` entry points.
//! This module recovers exactly that — and nothing more — from the token
//! stream. It is resilient rather than complete: anything it cannot
//! parse (macro-generated items, exotic generics) is skipped, never
//! guessed at, so a parse gap can only ever cost a finding, not invent
//! one.

use crate::lexer::{Kind, Token};
use crate::{attr_end, matching_brace};

/// One named struct field, in declaration order.
#[derive(Debug)]
pub struct FieldInfo {
    pub name: String,
    /// 1-based line of the field's declaration.
    pub line: u32,
}

/// A struct with a named-field body. Tuple and unit structs are skipped:
/// the snapshot rules only reason about named fields.
#[derive(Debug)]
pub struct StructInfo {
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Fields in declaration order.
    pub fields: Vec<FieldInfo>,
}

/// A method (or associated fn) inside an `impl` block.
#[derive(Debug)]
pub struct MethodInfo {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    pub is_pub: bool,
    pub takes_mut_self: bool,
    /// Token range of the body, `tokens[body.0]` being the `{`.
    pub body: (usize, usize),
}

/// An `impl` block: `impl [Trait for] Type { methods }`.
#[derive(Debug)]
pub struct ImplInfo {
    /// Last path segment of the implemented trait (`Snapshot` for
    /// `impl vusion_snapshot::Snapshot for T`), `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Last path segment of the self type (`System` for `System<P>`).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    pub methods: Vec<MethodInfo>,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Default)]
pub struct Items {
    pub structs: Vec<StructInfo>,
    pub impls: Vec<ImplInfo>,
}

/// Token index one past the `>` closing the generic-argument list opened
/// at `open` (`tokens[open]` is the `<`). `->` arrows inside fn-pointer
/// types do not close the list.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>') {
            let arrow = i > 0 && (tokens[i - 1].is_punct('-') || tokens[i - 1].is_punct('='));
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Parses a type/trait path starting at `i` (`a::b::C<...>`), returning
/// the last path segment and the index one past the path.
fn parse_path(tokens: &[Token], mut i: usize) -> Option<(String, usize)> {
    let mut last = None;
    loop {
        let t = tokens.get(i)?;
        if t.kind != Kind::Ident {
            return last.map(|l| (l, i));
        }
        last = Some(t.text.clone());
        i += 1;
        if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
            i = skip_angles(tokens, i);
        }
        if tokens.get(i).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.kind == Kind::Ident)
        {
            i += 2;
            continue;
        }
        return last.map(|l| (l, i));
    }
}

/// Parses the named fields between a struct's braces (`tokens[open]` is
/// the `{`, `close` one past the matching `}`).
fn parse_fields(tokens: &[Token], open: usize, close: usize) -> Vec<FieldInfo> {
    let mut fields = Vec::new();
    let mut i = open + 1;
    let end = close.saturating_sub(1); // the closing `}` itself
    while i < end {
        let t = &tokens[i];
        // Skip field attributes (`#[serde(...)]`-style).
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            i = attr_end(tokens, i + 1);
            continue;
        }
        // Skip visibility (`pub`, `pub(crate)`, `pub(in ...)`).
        if t.is_ident("pub") {
            i += 1;
            if tokens.get(i).is_some_and(|n| n.is_punct('(')) {
                let mut depth = 0usize;
                while i < end {
                    if tokens[i].is_punct('(') {
                        depth += 1;
                    } else if tokens[i].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            continue;
        }
        // `name: Type,`
        if t.kind == Kind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            fields.push(FieldInfo {
                name: t.text.clone(),
                line: t.line,
            });
            // Skip the type: consume until a `,` at bracket depth zero.
            i += 2;
            let (mut paren, mut angle) = (0isize, 0isize);
            while i < end {
                let t = &tokens[i];
                if t.is_punct(',') && paren == 0 && angle <= 0 {
                    i += 1;
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    paren += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    paren -= 1;
                } else if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    let arrow =
                        i > 0 && (tokens[i - 1].is_punct('-') || tokens[i - 1].is_punct('='));
                    if !arrow {
                        angle -= 1;
                    }
                }
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    fields
}

/// Whether the tokens directly before the `fn` at `i` carry a `pub`
/// (skipping `const`/`unsafe`/`async`/`extern "C"` qualifiers and the
/// parenthesized part of `pub(crate)`).
fn fn_is_pub(tokens: &[Token], i: usize, floor: usize) -> bool {
    let mut k = i;
    while k > floor {
        k -= 1;
        let t = &tokens[k];
        if t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async") {
            continue;
        }
        if t.is_ident("extern") || t.kind == Kind::Str {
            continue;
        }
        if t.is_punct(')') {
            while k > floor && !tokens[k].is_punct('(') {
                k -= 1;
            }
            continue;
        }
        return t.is_ident("pub");
    }
    false
}

/// Parses the methods between an impl block's braces.
fn parse_methods(tokens: &[Token], open: usize, close: usize) -> Vec<MethodInfo> {
    let mut methods = Vec::new();
    let mut i = open + 1;
    let end = close.saturating_sub(1);
    while i < end {
        let t = &tokens[i];
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            i = attr_end(tokens, i + 1);
            continue;
        }
        if t.is_ident("fn") && tokens.get(i + 1).is_some_and(|n| n.kind == Kind::Ident) {
            let name = tokens[i + 1].text.clone();
            let line = t.line;
            let is_pub = fn_is_pub(tokens, i, open);
            // Scan the signature to the body `{` (or a `;`).
            let mut j = i + 2;
            let mut takes_mut_self = false;
            while j < end && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].is_ident("self") {
                    let back: Vec<&Token> = tokens[..j].iter().rev().take(3).collect();
                    let has_mut = back.first().is_some_and(|t| t.is_ident("mut"));
                    let has_amp = back.iter().any(|t| t.is_punct('&'));
                    if has_mut && has_amp {
                        takes_mut_self = true;
                    }
                }
                j += 1;
            }
            if j < end && tokens[j].is_punct('{') {
                let body_close = matching_brace(tokens, j);
                methods.push(MethodInfo {
                    name,
                    line,
                    is_pub,
                    takes_mut_self,
                    body: (j, body_close),
                });
                i = body_close; // skips nested fns inside the body
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    methods
}

/// Recovers the structs and impl blocks of one file.
pub fn parse_items(tokens: &[Token]) -> Items {
    let mut items = Items::default();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("struct") && tokens.get(i + 1).is_some_and(|n| n.kind == Kind::Ident) {
            let name = tokens[i + 1].text.clone();
            let line = t.line;
            let mut j = i + 2;
            if tokens.get(j).is_some_and(|n| n.is_punct('<')) {
                j = skip_angles(tokens, j);
            }
            // Skip a `where` clause to the body; `(` or `;` means a
            // tuple/unit struct, which the snapshot rules ignore.
            while j < tokens.len()
                && !tokens[j].is_punct('{')
                && !tokens[j].is_punct('(')
                && !tokens[j].is_punct(';')
            {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let close = matching_brace(tokens, j);
                items.structs.push(StructInfo {
                    name,
                    line,
                    fields: parse_fields(tokens, j, close),
                });
                i = close;
                continue;
            }
            i = j + 1;
            continue;
        }
        if t.is_ident("impl") {
            let line = t.line;
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|n| n.is_punct('<')) {
                j = skip_angles(tokens, j);
            }
            // Skip `&`/`mut`/lifetimes before the first path (rare).
            while tokens
                .get(j)
                .is_some_and(|n| n.is_punct('&') || n.is_ident("mut") || n.kind == Kind::Lifetime)
            {
                j += 1;
            }
            let Some((first, mut j)) = parse_path(tokens, j) else {
                i += 1;
                continue;
            };
            let (trait_name, type_name) = if tokens.get(j).is_some_and(|n| n.is_ident("for")) {
                j += 1;
                while tokens.get(j).is_some_and(|n| {
                    n.is_punct('&') || n.is_ident("mut") || n.kind == Kind::Lifetime
                }) {
                    j += 1;
                }
                let Some((ty, after)) = parse_path(tokens, j) else {
                    i += 1;
                    continue;
                };
                j = after;
                (Some(first), ty)
            } else {
                (None, first)
            };
            // Skip a `where` clause to the body.
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let close = matching_brace(tokens, j);
                items.impls.push(ImplInfo {
                    trait_name,
                    type_name,
                    line,
                    methods: parse_methods(tokens, j, close),
                });
                i = close;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Items {
        parse_items(&lex(src))
    }

    #[test]
    fn structs_recover_named_fields_in_order() {
        let it = parse(
            "pub struct Frame<T: Clone> {\n\
             \x20   #[allow(dead_code)]\n\
             \x20   pub state: u8,\n\
             \x20   data: Option<Box<[u8; SIZE as usize]>>,\n\
             \x20   pub(crate) map: BTreeMap<u64, Vec<(u32, u32)>>,\n\
             \x20   hook: fn(u64) -> u64,\n\
             }\n\
             struct Unit;\n\
             struct Tup(u64, u64);\n",
        );
        assert_eq!(it.structs.len(), 1);
        let s = &it.structs[0];
        assert_eq!(s.name, "Frame");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["state", "data", "map", "hook"]);
        assert_eq!(s.fields[0].line, 3);
        assert_eq!(s.fields[3].line, 6);
    }

    #[test]
    fn impls_recover_trait_type_and_methods() {
        let it = parse(
            "impl<P: Policy> System<P> {\n\
             \x20   pub fn read(&mut self, x: u64) -> u64 { self.go(x) }\n\
             \x20   fn go(&self, x: u64) -> u64 { x }\n\
             }\n\
             impl vusion_snapshot::Snapshot for Pool {\n\
             \x20   fn save(&self, w: &mut Writer) { fn nested() {} w.u64(self.a); }\n\
             \x20   fn load(&mut self, r: &mut Reader<'_>) -> Result<(), E> { Ok(()) }\n\
             }\n",
        );
        assert_eq!(it.impls.len(), 2);
        let sys = &it.impls[0];
        assert_eq!(sys.trait_name, None);
        assert_eq!(sys.type_name, "System");
        assert_eq!(sys.methods.len(), 2);
        assert!(sys.methods[0].is_pub && sys.methods[0].takes_mut_self);
        assert!(!sys.methods[1].is_pub && !sys.methods[1].takes_mut_self);
        let snap = &it.impls[1];
        assert_eq!(snap.trait_name.as_deref(), Some("Snapshot"));
        assert_eq!(snap.type_name, "Pool");
        // The nested fn inside `save` is not a method.
        let names: Vec<&str> = snap.methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["save", "load"]);
        assert!(snap.methods[1].takes_mut_self);
    }

    #[test]
    fn where_clauses_and_fn_pointer_arrows_do_not_derail() {
        let it = parse(
            "impl<T> Holder<T> where T: Fn(u64) -> u64 {\n\
             \x20   pub fn put(&mut self) {}\n\
             }\n",
        );
        assert_eq!(it.impls.len(), 1);
        assert_eq!(it.impls[0].type_name, "Holder");
        assert_eq!(it.impls[0].methods.len(), 1);
    }
}
