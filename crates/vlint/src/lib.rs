//! `vlint` — the workspace's static-contract checker.
//!
//! The simulator's correctness claims rest on contracts a type system
//! alone cannot express: reproducibility of every figure from a seed
//! (determinism), coherence of the memoized page hashes (write-gen), the
//! PTE bit layout staying behind one typed API (the S⊕F trap bits), and a
//! uniform error policy in simulation code. `vlint` walks the workspace
//! sources with its own lexer (no rustc, no network, no dependencies) and
//! enforces those contracts as lint rules:
//!
//! * **D-rules** — determinism: no wall-clock time, no randomized-order
//!   hash collections, no environment reads, no platform-conditional
//!   compilation inside the simulation crates.
//! * **T-rules** — threading: host threads stay behind the approved
//!   shard runner (`crates/core/src/shard.rs`) and the campaign driver;
//!   ad-hoc `std::thread` use would make artifacts depend on scheduling.
//! * **W-rules** — write-gen coherence: code in `vusion-mem` that can
//!   reach mutable frame contents must bump the frame's write generation
//!   (checked transitively across local calls).
//! * **P-rules** — PTE typing: page-table words are manipulated only
//!   through `vusion-mmu`'s `Pte`/`PteFlags` API; raw `u64` bit twiddling
//!   and the `bits`/`from_bits` escape hatches stay inside that crate.
//! * **E-rules** — error policy: no panic-family macros in simulation
//!   code outside tests unless the function documents the contract with a
//!   `# Panics` doc section, and no silently-truncating casts on frame or
//!   generation arithmetic.
//! * **G-rules** — governor: the free-frame pressure signal is read only
//!   by the pressure governor (`crates/kernel/src/pressure.rs`); engines
//!   and the rest of the kernel consume its banded decisions so
//!   throttling stays centralized, hysteresis-damped, and snapshot-exact.
//! * **O-rules** — observability: latency histograms are sampled only
//!   inside the side-channel surface recorder
//!   (`crates/obs/src/surface.rs`); everyone else goes through typed
//!   wrappers like `Obs::observe_fault_latency`, so every latency
//!   observation feeds one canonical, diffable artifact.
//! * **S-rules** — snapshot coverage: every field of every
//!   `impl Snapshot` type round-trips through `save`/`load` (S001), in
//!   the same order on both sides (S002); derived or host-only fields
//!   carry a reasoned allow on their declaration line.
//! * **J-rules** — journal coverage: every public `&mut self` method on
//!   `System`/`Machine` that reaches simulation state appends a journal
//!   event (or is reachable from one that does), so replay reconstructs
//!   every mutation from the event stream.
//! * **R-rules** — RNG/shard discipline: no RNG draw, crash poll, or
//!   frame mutation is reachable from the parallel read phase's
//!   `FrameReadView` closures; effects belong in the serial commit phase.
//!
//! The first seven families are per-file token passes. The S/J/R
//! families (and W's transitive check) run on a workspace level: a
//! lightweight item parser ([`parser`]) recovers structs, impl blocks,
//! and methods, and a cross-file symbol table and name-based call graph
//! (`workspace`) answers reachability questions over the whole tree.
//!
//! Findings are deterministic: files are visited in sorted order and
//! findings sort by `(file, line, rule, message)`, so two runs over the
//! same tree emit byte-identical JSON. Individual lines opt out with
//! `// vlint: allow(RULE, reason)`; a reason is mandatory (rule `V001`).

pub mod catalog;
pub mod lexer;
pub mod parser;
mod rules;
mod workspace;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use lexer::{lex, Kind, Token};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier (`D001`, `W001`, ...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The `file:line:rule` key used for baseline matching.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.rule)
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, Default)]
pub struct Families {
    /// Determinism rules.
    pub d: bool,
    /// Threading rules.
    pub t: bool,
    /// Write-gen coherence rules.
    pub w: bool,
    /// PTE-typing rules.
    pub p: bool,
    /// Error-policy rules.
    pub e: bool,
    /// Governor pressure-signal rules.
    pub g: bool,
    /// Observability (surface latency-sampling) rules.
    pub o: bool,
    /// Snapshot-coverage rules.
    pub s: bool,
    /// Journal-coverage rules.
    pub j: bool,
    /// RNG/shard-discipline rules.
    pub r: bool,
}

impl Families {
    /// Every family on — used by fixtures.
    pub const ALL: Families = Families {
        d: true,
        t: true,
        w: true,
        p: true,
        e: true,
        g: true,
        o: true,
        s: true,
        j: true,
        r: true,
    };
}

/// Whether `rule` belongs to a family enabled in `fam` (keyed by the
/// rule's leading letter; `V001` is always on).
fn family_enabled(fam: Families, rule: &str) -> bool {
    match rule.as_bytes().first() {
        Some(b'D') => fam.d,
        Some(b'T') => fam.t,
        Some(b'W') => fam.w,
        Some(b'P') => fam.p,
        Some(b'E') => fam.e,
        Some(b'G') => fam.g,
        Some(b'O') => fam.o,
        Some(b'S') => fam.s,
        Some(b'J') => fam.j,
        Some(b'R') => fam.r,
        _ => true,
    }
}

/// Crates whose behavior must be a pure function of the seed: the D-rules
/// apply to their `src/` trees.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/mem/src/",
    "crates/mmu/src/",
    "crates/kernel/src/",
    "crates/core/src/",
    "crates/obs/src/",
    "crates/snapshot/src/",
    "crates/campaign/src/",
];

/// Simulation crates under the error-policy rules.
const ERROR_POLICY_SCOPE: &[&str] = &[
    "crates/mem/src/",
    "crates/mmu/src/",
    "crates/kernel/src/",
    "crates/core/src/",
    "crates/cache/src/",
    "crates/dram/src/",
    "crates/obs/src/",
    "crates/snapshot/src/",
    "crates/campaign/src/",
];

/// Maps a workspace-relative path to the rule families that police it.
pub fn families_for(rel: &str) -> Families {
    let in_scope = |scope: &[&str]| scope.iter().any(|p| rel.starts_with(p));
    Families {
        d: in_scope(DETERMINISM_SCOPE),
        // Host threads ride the same scope as determinism: the crates
        // whose artifacts must not depend on scheduling.
        t: in_scope(DETERMINISM_SCOPE),
        w: rel.starts_with("crates/mem/src/"),
        // PTE words may only be touched inside the MMU crate; everyone
        // else — engines, kernel, tests, benches — goes through the API.
        p: !rel.starts_with("crates/mmu/src/"),
        e: in_scope(ERROR_POLICY_SCOPE),
        // The free-frame pressure signal is read in exactly one place —
        // the governor. Engines and the scan loop see only its banded
        // decisions; the allocator crates that implement `free_frames`
        // are naturally out of scope.
        g: (rel.starts_with("crates/core/src/") || rel.starts_with("crates/kernel/src/"))
            && rel != "crates/kernel/src/pressure.rs",
        // Latency histograms are sampled in exactly one module — the
        // surface recorder. The obs crate itself (recorder + registry)
        // is naturally out of scope.
        o: !rel.starts_with("crates/obs/src/"),
        // Snapshot round-trip coverage applies to every crate's library
        // sources: any `impl Snapshot` in the tree is replay-critical.
        s: rel.starts_with("crates/") && rel.contains("/src/"),
        // Journal coverage polices the kernel's public mutator surface
        // (`System`/`Machine` live there).
        j: rel.starts_with("crates/kernel/src/"),
        // Shard-phase discipline rides the determinism scope: the crates
        // whose artifacts must be byte-identical at any thread count.
        r: in_scope(DETERMINISM_SCOPE),
    }
}

/// A function item recovered from the token stream.
#[derive(Debug)]
pub(crate) struct FnInfo {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, `tokens[body.0]` being the `{`.
    pub body: (usize, usize),
    /// Whether the signature takes `&mut self`.
    pub takes_mut_self: bool,
    /// Whether the doc comment above the item has a `# Panics` section.
    pub has_panics_doc: bool,
}

/// Everything the rules need to know about one file.
pub(crate) struct FileCtx<'a> {
    pub rel: &'a str,
    pub tokens: Vec<Token>,
    /// 1-based line -> inside a `#[cfg(test)]` / `#[test]` /
    /// `#[cfg(debug_assertions)]` item.
    pub test_lines: Vec<bool>,
    pub fns: Vec<FnInfo>,
    /// Item-level view: structs, impl blocks, methods.
    pub items: parser::Items,
    /// The rule families policing this file (workspace rules consult it
    /// to decide which files' items to analyze).
    pub fam: Families,
}

impl FileCtx<'_> {
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= i && i < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }
}

/// Finds the token index of the `}` matching the `{` at `open` (returns
/// the index one past it for use as an exclusive bound).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Token index one past the `]` closing the attribute opened at `open`
/// (`tokens[open]` is the `[`).
fn attr_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('[') {
            depth += 1;
        } else if tokens[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Marks the line span of every item guarded by a test-only attribute
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(debug_assertions)]`,
/// `#[should_panic]`, `#[bench]`).
fn mark_test_regions(tokens: &[Token], line_count: usize) -> Vec<bool> {
    let mut marked = vec![false; line_count + 2];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let end = attr_end(tokens, i + 1);
            let attr = &tokens[i + 1..end];
            let test_only = attr.iter().any(|t| {
                t.is_ident("test")
                    || t.is_ident("should_panic")
                    || t.is_ident("bench")
                    || t.is_ident("debug_assertions")
            }) && !attr.iter().any(|t| t.is_ident("not")); // `#[cfg(not(test))]` is live code
            if test_only {
                // The guarded item runs from the attribute to the end of
                // the next braced block (or to a `;` for bodiless items).
                let mut j = end;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                let close = if j < tokens.len() && tokens[j].is_punct('{') {
                    matching_brace(tokens, j)
                } else {
                    (j + 1).min(tokens.len())
                };
                let first = tokens[i].line as usize;
                let last = tokens
                    .get(close.saturating_sub(1))
                    .map_or(first, |t| t.line as usize);
                for m in marked
                    .iter_mut()
                    .take(last.min(line_count + 1) + 1)
                    .skip(first)
                {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    marked
}

/// Whether the doc block directly above `fn_line` (1-based) contains a
/// `# Panics` section. Attribute lines between docs and the item are
/// skipped.
fn has_panics_doc(lines: &[&str], fn_line: u32) -> bool {
    let mut l = fn_line as usize - 1; // index of the `fn` line
    while l > 0 {
        l -= 1;
        let t = lines[l].trim_start();
        if t.starts_with("///") || t.starts_with("//!") {
            if t.contains("# Panics") {
                return true;
            }
            continue;
        }
        if t.starts_with("#[") || t.starts_with("#![") || t.ends_with("]") && t.starts_with(")") {
            continue; // attribute (possibly the tail of a multi-line one)
        }
        if t.starts_with("//") {
            continue; // plain comment between docs and item
        }
        break;
    }
    false
}

/// Recovers function items (flat list, including nested ones).
fn collect_fns(tokens: &[Token], lines: &[&str]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && i + 1 < tokens.len() && tokens[i + 1].kind == Kind::Ident {
            let name = tokens[i + 1].text.clone();
            let fn_line = tokens[i].line;
            // Signature runs to the body `{` or a `;` (trait method decl).
            let mut j = i + 2;
            let mut takes_mut_self = false;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].is_ident("self") {
                    // `&mut self` / `&'a mut self`.
                    let back: Vec<&Token> = tokens[..j].iter().rev().take(3).collect();
                    let has_mut = back.first().is_some_and(|t| t.is_ident("mut"));
                    let has_amp = back.iter().any(|t| t.is_punct('&'));
                    if has_mut && has_amp {
                        takes_mut_self = true;
                    }
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let close = matching_brace(tokens, j);
                fns.push(FnInfo {
                    name,
                    line: fn_line,
                    body: (j, close),
                    takes_mut_self,
                    has_panics_doc: has_panics_doc(lines, fn_line),
                });
                i += 2;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    fns
}

/// Map from line number to the rules allowed on that line.
type AllowMap = BTreeMap<u32, Vec<String>>;

/// Per-line `// vlint: allow(RULE, reason)` suppressions. The annotation
/// silences `RULE` on its own line and on the line directly below (so it
/// can sit above the offending statement). Returns `(line -> rules,
/// malformed)` where malformed entries are annotations without a reason.
fn parse_allows(lines: &[&str]) -> (AllowMap, Vec<(u32, String)>) {
    let mut allows: AllowMap = BTreeMap::new();
    let mut malformed = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let line = idx as u32 + 1;
        let Some(pos) = raw.find("// vlint: allow(") else {
            continue;
        };
        let rest = &raw[pos + "// vlint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            malformed.push((line, "unterminated vlint allow annotation".to_string()));
            continue;
        };
        let inner = &rest[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if rule.is_empty() || reason.is_empty() {
            malformed.push((
                line,
                format!(
                    "vlint allow for {} needs a reason: `// vlint: allow(RULE, why)`",
                    if rule.is_empty() {
                        "<missing rule>"
                    } else {
                        rule
                    }
                ),
            ));
            continue;
        }
        allows.entry(line).or_default().push(rule.to_string());
    }
    (allows, malformed)
}

/// Builds the per-file contexts for a batch of sources.
pub(crate) fn build_file_ctxs(files: &[(String, String, Families)]) -> Vec<FileCtx<'_>> {
    files
        .iter()
        .map(|(rel, source, fam)| {
            let lines: Vec<&str> = source.lines().collect();
            let tokens = lex(source);
            FileCtx {
                rel,
                test_lines: mark_test_regions(&tokens, lines.len()),
                fns: collect_fns(&tokens, &lines),
                items: parser::parse_items(&tokens),
                fam: *fam,
                tokens,
            }
        })
        .collect()
}

/// Lints a batch of files as one workspace: per-file token rules first,
/// then the cross-file rules (W/S/J/R) over the shared symbol table and
/// call graph. Each finding is kept only if its rule's family is enabled
/// for the file it is anchored in, and per-line allows apply as usual.
pub fn analyze_files(files: &[(String, String, Families)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut allows: BTreeMap<&str, AllowMap> = BTreeMap::new();
    for (rel, source, _) in files {
        let lines: Vec<&str> = source.lines().collect();
        let (map, malformed) = parse_allows(&lines);
        for (line, msg) in malformed {
            findings.push(Finding {
                file: rel.clone(),
                line,
                rule: "V001",
                message: msg,
            });
        }
        allows.insert(rel.as_str(), map);
    }

    let ctxs = build_file_ctxs(files);
    for ctx in &ctxs {
        rules::determinism(ctx, &mut findings);
        rules::threading(ctx, &mut findings);
        rules::pte_typing(ctx, &mut findings);
        rules::error_policy(ctx, &mut findings);
        rules::governor(ctx, &mut findings);
        rules::surface(ctx, &mut findings);
    }
    let ws = workspace::WorkspaceCtx::build(&ctxs);
    rules::write_gen(&ws, &mut findings);
    rules::snapshot_coverage(&ws, &mut findings);
    rules::journal_coverage(&ws, &mut findings);
    rules::shard_discipline(&ws, &mut findings);

    let fam_of: BTreeMap<&str, Families> = files
        .iter()
        .map(|(rel, _, fam)| (rel.as_str(), *fam))
        .collect();
    findings.retain(|f| {
        // V001 (malformed annotation) is always live and cannot be
        // self-suppressed.
        if f.rule == "V001" {
            return true;
        }
        let fam = fam_of.get(f.file.as_str()).copied().unwrap_or_default();
        if !family_enabled(fam, f.rule) {
            return false;
        }
        let allowed = |l: u32| {
            allows.get(f.file.as_str()).is_some_and(|m| {
                m.get(&l)
                    .is_some_and(|rules| rules.iter().any(|r| r == f.rule))
            })
        };
        !allowed(f.line) && !allowed(f.line.saturating_sub(1))
    });
    findings.sort();
    findings.dedup();
    findings
}

/// Lints one file's source as a single-file workspace. `rel` is the
/// workspace-relative path used in findings; `fam` selects the rule
/// families (callers normally derive it with [`families_for`], fixtures
/// force [`Families::ALL`]).
pub fn analyze_source(rel: &str, source: &str, fam: Families) -> Vec<Finding> {
    analyze_files(&[(rel.to_string(), source.to_string(), fam)])
}

/// Recursively collects the workspace's `.rs` files, sorted, as paths
/// relative to `root`. Skips build output, VCS metadata, logs, and this
/// crate itself (its rule tables spell out the very patterns it hunts).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "bench_logs", "related"];
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                if path
                    .strip_prefix(root)
                    .is_ok_and(|r| r.to_string_lossy().replace('\\', "/") == "crates/vlint")
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the whole workspace rooted at `root`. Returns findings with
/// per-line suppressions already applied (baseline filtering is the
/// caller's job).
pub fn scan_root(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for rel in workspace_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let fam = families_for(&rel);
        files.push((rel, source, fam));
    }
    Ok(analyze_files(&files))
}

/// Serializes findings as deterministic JSON: fixed field order, sorted
/// entries, `\n` line endings, no trailing whitespace. Byte-identical
/// across runs on the same tree.
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
    }
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"file\": \"");
        esc(&f.file, &mut out);
        let _ = write!(
            out,
            "\", \"line\": {}, \"rule\": \"{}\", \"message\": \"",
            f.line, f.rule
        );
        esc(&f.message, &mut out);
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parses the `file:line:rule` keys out of a baseline JSON written by
/// [`to_json`]. Tolerant: anything that is not a finding object is
/// ignored, so a hand-edited baseline still loads.
pub fn baseline_keys(json: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find("{\"file\": \"") {
        rest = &rest[start + "{\"file\": \"".len()..];
        let Some(fe) = rest.find('"') else { break };
        let file = &rest[..fe];
        let Some(ls) = rest.find("\"line\": ") else {
            break;
        };
        let after = &rest[ls + "\"line\": ".len()..];
        let line: String = after.chars().take_while(|c| c.is_ascii_digit()).collect();
        let Some(rs) = rest.find("\"rule\": \"") else {
            break;
        };
        let after_r = &rest[rs + "\"rule\": \"".len()..];
        let Some(re) = after_r.find('"') else { break };
        keys.push(format!("{}:{}:{}", file, line, &after_r[..re]));
    }
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_annotation_suppresses_same_and_next_line() {
        let src = "\
// vlint: allow(D002, test of suppression)
use std::collections::HashMap;
use std::collections::HashSet;
";
        let f = analyze_source("crates/mem/src/x.rs", src, Families::ALL);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D002");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "let x = 1; // vlint: allow(D002)\n";
        let f = analyze_source("crates/mem/src/x.rs", src, Families::ALL);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "V001");
    }

    #[test]
    fn json_roundtrips_baseline_keys() {
        let findings = vec![
            Finding {
                file: "a.rs".into(),
                line: 3,
                rule: "D001",
                message: "no \"clocks\"".into(),
            },
            Finding {
                file: "b.rs".into(),
                line: 9,
                rule: "P002",
                message: "escape hatch".into(),
            },
        ];
        let json = to_json(&findings);
        assert_eq!(baseline_keys(&json), vec!["a.rs:3:D001", "b.rs:9:P002"]);
        assert_eq!(baseline_keys(&to_json(&[])), Vec::<String>::new());
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() { panic!(\"fine here\"); }
}
";
        let tokens = lex(src);
        let marked = mark_test_regions(&tokens, src.lines().count());
        assert!(!marked[1]);
        assert!(marked[2] && marked[3] && marked[4] && marked[5]);
    }
}
