//! Cross-file symbol table and call graph.
//!
//! The S/J/R families reason about the workspace as a whole: "does this
//! public mutator reach simulation state?", "is an RNG draw reachable
//! from this closure?". Those questions need a call graph. Because vlint
//! has no type information, the graph is *name-based*: a call site
//! `foo(...)` is an edge to every workspace function named `foo`. That
//! over-approximates reachability (two unrelated `reset` functions are
//! conflated), which is the safe direction for the J/R rules — a
//! conflation can only add a path, never hide one — and the rare false
//! positive is absorbed by a reasoned `// vlint: allow(...)`.
//!
//! Test-region functions are excluded from the graph: a test helper that
//! happens to share a production function's name must not launder (or
//! fabricate) reachability.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Kind, Token};
use crate::FileCtx;

/// Names so ubiquitous that a call site almost always means std or a
/// container, not the workspace function that happens to share the name
/// (`Cell::get` vs `FrameInfo::get`, `Vec::insert` vs a tree's
/// `insert`). The closure does not expand through them and the J/R rules
/// never treat them as sinks/effects: without this, one `v.get(...)`
/// anywhere conflates into the whole graph and reachability floods —
/// drowning true positives in coverage and true negatives in noise. The
/// effect/sink vocabulary (RNG draws, `record`, crash fns, domain verbs
/// like `alloc`) is deliberately specific, so treating these as opaque
/// costs almost no real paths.
const OPAQUE_NAMES: &[&str] = &[
    "as_mut",
    "as_ref",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "default",
    "end",
    "entry",
    "eq",
    "expect",
    "extend",
    "filter",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "len",
    "map",
    "max",
    "min",
    "new",
    "next",
    "or_default",
    "or_insert",
    "pop",
    "push",
    "remove",
    "replace",
    "run",
    "set",
    "start",
    "take",
    "to_string",
    "unwrap",
];

/// Whether the call-graph treats `name` as an opaque std-ish call.
pub(crate) fn is_opaque(name: &str) -> bool {
    OPAQUE_NAMES.binary_search(&name).is_ok()
}

/// The identifiers invoked as calls (`name(`) within a token slice.
/// Macro invocations (`name!(...)`) never match: the `!` sits between
/// the identifier and the parenthesis.
pub(crate) fn call_names(ts: &[Token]) -> BTreeSet<String> {
    ts.windows(2)
        .filter(|w| w[0].kind == Kind::Ident && w[1].is_punct('('))
        .map(|w| w[0].text.clone())
        .collect()
}

/// Whether the slice assigns to a `write_gen` field (`.write_gen = ...`).
pub(crate) fn writes_gen(ts: &[Token]) -> bool {
    ts.windows(3)
        .any(|w| w[0].is_punct('.') && w[1].is_ident("write_gen") && w[2].is_punct('='))
}

/// Whether the slice mentions the frame-content store (`self.data`).
pub(crate) fn touches_self_data(ts: &[Token]) -> bool {
    ts.windows(3)
        .any(|w| w[0].is_ident("self") && w[1].is_punct('.') && w[2].is_ident("data"))
}

/// One function in the workspace call graph.
pub(crate) struct FnNode {
    /// Index into the workspace's file list.
    pub file: usize,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    pub takes_mut_self: bool,
    /// Names this function's body invokes as calls.
    pub calls: BTreeSet<String>,
    /// Whether the body assigns `.write_gen = ...`.
    pub writes_gen: bool,
    /// Whether the body mentions `self.data`.
    pub touches_data: bool,
    /// Whether the `fn` item sits in a test region.
    pub in_test: bool,
}

/// The workspace-wide view the cross-file rules run against.
pub(crate) struct WorkspaceCtx<'w, 'a> {
    pub files: &'w [FileCtx<'a>],
    pub nodes: Vec<FnNode>,
    /// Function name -> indices into `nodes`.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl<'w, 'a> WorkspaceCtx<'w, 'a> {
    pub fn build(files: &'w [FileCtx<'a>]) -> Self {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for fun in &f.fns {
                let body = &f.tokens[fun.body.0..fun.body.1];
                nodes.push(FnNode {
                    file: fi,
                    name: fun.name.clone(),
                    line: fun.line,
                    takes_mut_self: fun.takes_mut_self,
                    calls: call_names(body),
                    writes_gen: writes_gen(body),
                    touches_data: touches_self_data(body),
                    in_test: f.in_test_code(fun.line),
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.clone()).or_default().push(i);
        }
        Self {
            files,
            nodes,
            by_name,
        }
    }

    /// Name-reachability closure: starting from the call names in
    /// `seeds`, repeatedly expand through the body of every non-test
    /// function bearing a reached name. Returns the reached set plus a
    /// predecessor map for reconstructing one call chain per name.
    pub fn closure(
        &self,
        seeds: &BTreeSet<String>,
    ) -> (BTreeSet<String>, BTreeMap<String, String>) {
        let mut reached = seeds.clone();
        let mut parent: BTreeMap<String, String> = BTreeMap::new();
        // Deterministic BFS: pop in sorted order.
        let mut frontier: Vec<String> = seeds.iter().rev().cloned().collect();
        while let Some(name) = frontier.pop() {
            if is_opaque(&name) {
                continue;
            }
            let Some(ids) = self.by_name.get(&name) else {
                continue;
            };
            let mut fresh: BTreeSet<String> = BTreeSet::new();
            for &id in ids {
                let n = &self.nodes[id];
                if n.in_test {
                    continue;
                }
                for callee in &n.calls {
                    if !reached.contains(callee) {
                        fresh.insert(callee.clone());
                    }
                }
            }
            for callee in fresh.into_iter().rev() {
                reached.insert(callee.clone());
                parent.insert(callee.clone(), name.clone());
                frontier.push(callee);
            }
        }
        (reached, parent)
    }

    /// Renders the call chain that reached `name` as `a -> b -> name`.
    pub fn chain(&self, parent: &BTreeMap<String, String>, name: &str) -> String {
        let mut links = vec![name.to_string()];
        let mut cur = name;
        while let Some(p) = parent.get(cur) {
            links.push(p.clone());
            cur = p;
            if links.len() > 16 {
                break; // defensive: parent maps are acyclic by construction
            }
        }
        links.reverse();
        links.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn opaque_names_are_sorted_for_binary_search() {
        let mut sorted = OPAQUE_NAMES.to_vec();
        sorted.sort_unstable();
        assert_eq!(OPAQUE_NAMES, &sorted[..]);
        assert!(is_opaque("get") && !is_opaque("record") && !is_opaque("next_u64"));
    }

    #[test]
    fn closure_does_not_expand_through_opaque_names() {
        let sources = [(
            "crates/mem/src/a.rs".to_string(),
            "fn get() { forbidden(); }\nfn top(&self) { v.get(); }\n".to_string(),
            crate::Families::ALL,
        )];
        let files = crate::build_file_ctxs(&sources);
        let ws = WorkspaceCtx::build(&files);
        let seeds: BTreeSet<String> = ["top".to_string()].into_iter().collect();
        let (reached, _) = ws.closure(&seeds);
        assert!(reached.contains("get"));
        assert!(!reached.contains("forbidden"));
    }

    #[test]
    fn call_names_skip_macros() {
        let toks = lex("fn f() { go(1); assert_eq!(a, b); self.rng.next_u64() }");
        let calls = call_names(&toks);
        assert!(calls.contains("go"));
        assert!(calls.contains("next_u64"));
        assert!(!calls.contains("assert_eq"));
    }

    #[test]
    fn closure_expands_transitively_and_skips_test_fns() {
        let sources = [
            (
                "crates/mem/src/a.rs".to_string(),
                "fn top(&self) { mid(); }\nfn mid() { bottom(); }\nfn bottom() {}\n".to_string(),
                crate::Families::ALL,
            ),
            (
                "crates/mem/src/b.rs".to_string(),
                "#[cfg(test)]\nmod tests {\n  fn mid() { forbidden(); }\n}\n".to_string(),
                crate::Families::ALL,
            ),
        ];
        let files = crate::build_file_ctxs(&sources);
        let ws = WorkspaceCtx::build(&files);
        let seeds: BTreeSet<String> = ["top".to_string()].into_iter().collect();
        let (reached, parent) = ws.closure(&seeds);
        assert!(reached.contains("mid") && reached.contains("bottom"));
        // The test-region `mid` must not contribute its `forbidden` edge.
        assert!(!reached.contains("forbidden"));
        assert_eq!(ws.chain(&parent, "bottom"), "top -> mid -> bottom");
    }
}
