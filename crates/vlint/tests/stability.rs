//! Whole-workspace properties: the JSON report is byte-stable across
//! runs, and the committed tree stays clean against the baseline.

use std::path::PathBuf;

use vlint::{baseline_keys, scan_root, to_json};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn json_report_is_byte_stable() {
    let root = workspace_root();
    let first = scan_root(&root).expect("workspace scan succeeds");
    let second = scan_root(&root).expect("workspace scan succeeds");
    assert_eq!(
        to_json(&first).into_bytes(),
        to_json(&second).into_bytes(),
        "two scans of the same tree must serialize identically"
    );
}

#[test]
fn workspace_is_clean_against_baseline() {
    let root = workspace_root();
    let findings = scan_root(&root).expect("workspace scan succeeds");
    let baseline = std::fs::read_to_string(root.join("vlint.baseline.json"))
        .map(|text| baseline_keys(&text))
        .unwrap_or_default();
    let fresh: Vec<_> = findings
        .iter()
        .filter(|f| baseline.binary_search(&f.key()).is_err())
        .collect();
    assert!(
        fresh.is_empty(),
        "unbaselined vlint findings in the tree:\n{fresh:#?}"
    );
}
