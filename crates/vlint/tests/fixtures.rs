//! Fixture suite: one true-positive and one true-negative file per rule
//! under `tests/fixtures/`. The fixtures are linted with every rule
//! family forced on (their paths are outside the real scope map), so each
//! file demonstrates exactly the findings listed here.

use std::path::Path;

use vlint::{analyze_source, Families};

fn check(name: &str, expect: &[(&str, u32)]) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture file readable");
    let findings = analyze_source(&format!("fixtures/{name}"), &src, Families::ALL);
    let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, expect, "unexpected findings for {name}: {findings:#?}");
}

#[test]
fn d001_wall_clock() {
    check("d001_bad.rs", &[("D001", 3), ("D001", 3), ("D001", 6)]);
    check("d001_ok.rs", &[]);
}

#[test]
fn d002_hash_collections() {
    check("d002_bad.rs", &[("D002", 3), ("D002", 6)]);
    check("d002_ok.rs", &[]);
}

#[test]
fn d003_env_reads() {
    check("d003_bad.rs", &[("D003", 4)]);
    check("d003_ok.rs", &[]);
}

#[test]
fn d004_platform_cfg() {
    check("d004_bad.rs", &[("D004", 3), ("D004", 9)]);
    check("d004_ok.rs", &[]);
}

#[test]
fn t001_host_threads() {
    check("t001_bad.rs", &[("T001", 3), ("T001", 6), ("T001", 8)]);
    check("t001_ok.rs", &[]);
}

#[test]
fn w001_write_gen_bump() {
    check("w001_bad.rs", &[("W001", 10)]);
    check("w001_ok.rs", &[]);
}

#[test]
fn p001_raw_pte_bits() {
    check(
        "p001_bad.rs",
        &[("P001", 3), ("P001", 4), ("P001", 7), ("P001", 8)],
    );
    check("p001_ok.rs", &[]);
}

#[test]
fn p002_bits_escape_hatch() {
    check("p002_bad.rs", &[("P002", 5), ("P002", 9)]);
    check("p002_ok.rs", &[]);
}

#[test]
fn e001_undocumented_panics() {
    check("e001_bad.rs", &[("E001", 5), ("E001", 13)]);
    check("e001_ok.rs", &[]);
}

#[test]
fn e002_truncating_casts() {
    check("e002_bad.rs", &[("E002", 4), ("E002", 4), ("E002", 8)]);
    check("e002_ok.rs", &[]);
}

#[test]
fn g001_pressure_signal_reads() {
    check("g001_bad.rs", &[("G001", 4), ("G001", 9)]);
    check("g001_ok.rs", &[]);
}

#[test]
fn o001_latency_sampling() {
    check("o001_bad.rs", &[("O001", 4), ("O001", 8)]);
    check("o001_ok.rs", &[]);
}

#[test]
fn s001_snapshot_field_coverage() {
    check("s001_bad.rs", &[("S001", 5)]);
    check("s001_ok.rs", &[]);
}

#[test]
fn s002_snapshot_field_order() {
    check("s002_bad.rs", &[("S002", 15)]);
    check("s002_ok.rs", &[]);
}

#[test]
fn j001_journal_coverage() {
    check("j001_bad.rs", &[("J001", 10)]);
    check("j001_ok.rs", &[]);
}

#[test]
fn r001_shard_read_phase_discipline() {
    check("r001_bad.rs", &[("R001", 26), ("R001", 30)]);
    check("r001_ok.rs", &[]);
}

#[test]
fn v001_allow_annotations() {
    // A reasonless allow is itself a finding — and suppresses nothing.
    check("allow_bad.rs", &[("D002", 3), ("V001", 3), ("D002", 6)]);
    check("allow_ok.rs", &[]);
}
