//! Mutation canary for the snapshot-coverage analysis (S001).
//!
//! The fixture suite proves S001 on hand-written bad/ok files; this test
//! proves the *sensitivity* of the rule the way a mutation-testing run
//! would: start from a fully covered `impl Snapshot`, then delete one
//! field's round-trip line at a time and assert the analyzer catches
//! every single mutant at the mutated field's declaration line. If a
//! refactor of the S-family ever makes it blind to a dropped field, this
//! test fails before the real tree can grow an unserialized field.

use vlint::{analyze_source, Families};

/// A covered snapshot impl, with `{save}` / `{load}` holes so each
/// mutant can drop one statement.
fn scanner_source(save: &str, load: &str) -> String {
    format!(
        "pub struct Scanner {{\n\
         \x20   pub cursor: u64,\n\
         \x20   pub passes: u64,\n\
         \x20   pub budget: u64,\n\
         }}\n\
         impl Snapshot for Scanner {{\n\
         \x20   fn save(&self, w: &mut Writer) {{\n\
         {save}\
         \x20   }}\n\
         \x20   fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {{\n\
         {load}\
         \x20       Ok(())\n\
         \x20   }}\n\
         }}\n"
    )
}

const FIELDS: [&str; 3] = ["cursor", "passes", "budget"];

fn save_lines(skip: Option<&str>) -> String {
    FIELDS
        .iter()
        .filter(|f| Some(**f) != skip)
        .map(|f| format!("        w.u64(self.{f});\n"))
        .collect()
}

fn load_lines(skip: Option<&str>) -> String {
    FIELDS
        .iter()
        .filter(|f| Some(**f) != skip)
        .map(|f| format!("        self.{f} = r.u64()?;\n"))
        .collect()
}

/// Declaration line of a field in `scanner_source` (struct opens line 1).
fn decl_line(field: &str) -> u32 {
    2 + FIELDS
        .iter()
        .position(|f| *f == field)
        .expect("known field") as u32
}

#[test]
fn unmutated_impl_is_clean() {
    let src = scanner_source(&save_lines(None), &load_lines(None));
    let findings = analyze_source("canary/scanner.rs", &src, Families::ALL);
    assert!(
        findings.is_empty(),
        "covered impl must be a true negative, got {findings:#?}"
    );
}

#[test]
fn every_dropped_field_mutant_is_caught() {
    for field in FIELDS {
        // Mutant A: the field vanishes from both save and load.
        let both = scanner_source(&save_lines(Some(field)), &load_lines(Some(field)));
        // Mutant B: saved but never restored.
        let load_only = scanner_source(&save_lines(None), &load_lines(Some(field)));
        // Mutant C: restored but never saved.
        let save_only = scanner_source(&save_lines(Some(field)), &load_lines(None));
        for (label, src) in [("both", both), ("load", load_only), ("save", save_only)] {
            let findings = analyze_source("canary/scanner.rs", &src, Families::ALL);
            let s001: Vec<(u32, &str)> = findings
                .iter()
                .filter(|f| f.rule == "S001")
                .map(|f| (f.line, f.message.as_str()))
                .collect();
            assert_eq!(
                s001.len(),
                1,
                "mutant dropping `{field}` from {label} must yield exactly one S001, \
                 got {findings:#?}"
            );
            let (line, message) = s001[0];
            assert_eq!(
                line,
                decl_line(field),
                "S001 must anchor at `{field}`'s declaration so the allow idiom \
                 (annotating the field) works"
            );
            assert!(
                message.contains(field),
                "S001 message must name the dropped field: {message}"
            );
        }
    }
}
