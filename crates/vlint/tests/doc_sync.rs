//! Doc-sync check: the rule catalog and DESIGN.md §11 must enumerate the
//! same rule set, in both directions.
//!
//! `vlint rules` and `vlint explain` render directly from
//! `vlint::catalog::RULES`, so catalog <-> §11 equality is exactly
//! "the CLI listing enumerates every documented rule and vice versa".
//! A rule added to the analyzer without a §11 entry — or documented in
//! §11 without a catalog entry — fails CI here.

use std::collections::BTreeSet;
use std::path::Path;

/// Extracts the body of DESIGN.md §11 (from its `## 11.` header up to the
/// next top-level `## ` header).
fn section_11() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let text = std::fs::read_to_string(&path).expect("DESIGN.md readable from crates/vlint");
    let start = text
        .find("\n## 11.")
        .expect("DESIGN.md has a `## 11.` section");
    let rest = &text[start + 1..];
    let end = rest["## 11.".len()..]
        .find("\n## ")
        .map(|i| i + "## 11.".len() + 1)
        .unwrap_or(rest.len());
    rest[..end].to_string()
}

/// Every `LDDD` rule-id-shaped token in `text` (uppercase letter followed
/// by exactly three digits, not embedded in a longer ident).
fn rule_ids(text: &str) -> BTreeSet<String> {
    let b = text.as_bytes();
    let mut out = BTreeSet::new();
    for i in 0..b.len().saturating_sub(3) {
        if !b[i].is_ascii_uppercase() || !b[i + 1..i + 4].iter().all(u8::is_ascii_digit) {
            continue;
        }
        let before_ok = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        let after_ok = i + 4 >= b.len() || !(b[i + 4].is_ascii_alphanumeric() || b[i + 4] == b'_');
        if before_ok && after_ok {
            out.insert(String::from_utf8_lossy(&b[i..i + 4]).into_owned());
        }
    }
    out
}

#[test]
fn design_section_11_and_catalog_agree() {
    let catalog: BTreeSet<String> = vlint::catalog::RULES
        .iter()
        .map(|r| r.id.to_string())
        .collect();
    let documented = rule_ids(&section_11());

    let undocumented: Vec<&String> = catalog.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "rules in the catalog but missing from DESIGN.md §11: {undocumented:?} \
         (add them to the §11 family list)"
    );
    let phantom: Vec<&String> = documented.difference(&catalog).collect();
    assert!(
        phantom.is_empty(),
        "rule ids mentioned in DESIGN.md §11 but absent from the catalog: {phantom:?} \
         (either implement + register them or fix the doc)"
    );
}

#[test]
fn rule_id_extraction_is_precise() {
    let ids = rule_ids("D001 and S002, but not SOSP17, X12, ABC1234, or write_D001.");
    let expect: BTreeSet<String> = ["D001", "S002"].iter().map(|s| s.to_string()).collect();
    assert_eq!(ids, expect);
}
