//! Fixture: W001 true negative — every path to frame contents bumps the
//! generation, directly or through a local helper (checked transitively).

pub struct PhysMemory {
    data: Vec<[u8; 4096]>,
    info: Vec<Info>,
}

pub struct Info {
    pub write_gen: u64,
}

impl PhysMemory {
    fn touch(&mut self, frame: usize) {
        self.info[frame].write_gen = self.info[frame].write_gen.wrapping_add(1);
    }

    fn mark(&mut self, frame: usize) {
        self.touch(frame);
    }

    pub fn write_byte(&mut self, frame: usize, off: usize, v: u8) {
        self.data[frame][off] = v;
        self.touch(frame);
    }

    pub fn zero_page(&mut self, frame: usize) {
        self.data[frame] = [0; 4096];
        self.mark(frame);
    }
}
