//! T001 true negatives: thread-flavored vocabulary without host threads.

struct ShardRunner {
    threads: usize,
}

impl ShardRunner {
    fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }
}

fn panic_label() -> &'static str {
    "shard worker thread panicked"
}
