//! G001 true negatives: pressure consumed through the governor's bands.

fn should_throttle(gov: &PressureGovernor) -> bool {
    gov.band() != PressureBand::Nominal
}

fn wake_budget(decision: &PressureDecision) -> u64 {
    decision.budget
}

#[cfg(test)]
mod tests {
    #[test]
    fn accounting_observation_is_exempt() {
        let b = BuddyAllocator::new(16);
        assert_eq!(b.free_frames(), 16);
    }
}
