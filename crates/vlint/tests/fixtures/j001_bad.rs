//! J001 true positive: a public mutator that reaches simulation state
//! (transitively, through a private helper) without appending a journal
//! event — replay could never reconstruct this call.

pub struct Machine {
    data: Vec<u8>,
}

impl Machine {
    pub fn hammer(&mut self, b: u8) {
        self.poke(b)
    }

    fn poke(&mut self, b: u8) {
        self.data[0] = b;
    }
}
