//! J001 true negatives: a journaled mutator, the journaling machinery
//! itself (exempt by name), and the allow idiom for a host-only knob.

pub struct Machine {
    data: Vec<u8>,
}

impl Machine {
    pub fn write(&mut self, b: u8) {
        self.record(b);
        self.poke(b)
    }

    pub fn record(&mut self, b: u8) {
        self.log.push(b)
    }

    // vlint: allow(J001, host-only — debug tap, never part of a replayed run)
    pub fn set_debug_tap(&mut self, b: u8) {
        self.poke(b)
    }

    fn poke(&mut self, b: u8) {
        self.data[0] = b;
    }
}
