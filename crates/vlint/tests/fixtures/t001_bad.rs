//! T001 true positives: ad-hoc host threading in a determinism crate.

use std::thread;

fn fan_out() -> u64 {
    let handle = thread::spawn(|| 1 + 1);
    let partial = handle.join().unwrap();
    std::thread::scope(|_s| {});
    partial
}
