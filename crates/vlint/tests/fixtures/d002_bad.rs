//! Fixture: D002 true positive — randomized-iteration collections.

use std::collections::HashMap;

pub struct Index {
    by_frame: HashMap<u64, u64>,
}
