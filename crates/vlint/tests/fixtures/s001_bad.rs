//! S001 true positive: a snapshotted field missing from the round trip.

pub struct Widget {
    pub counter: u64,
    pub cursor: u64,
}

impl Snapshot for Widget {
    fn save(&self, w: &mut Writer) {
        w.u64(self.counter);
    }

    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.counter = r.u64()?;
        Ok(())
    }
}
