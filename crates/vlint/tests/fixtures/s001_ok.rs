//! S001 true negatives: a full round trip, plus the allow idiom for a
//! derived field (the annotation sits on the field's declaration).

pub struct Widget {
    pub counter: u64,
    pub cursor: u64,
    // vlint: allow(S001, derived hash memo — rebuilt lazily after load)
    pub memo: u64,
}

impl Snapshot for Widget {
    fn save(&self, w: &mut Writer) {
        w.u64(self.counter);
        w.u64(self.cursor);
    }

    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.counter = r.u64()?;
        self.cursor = r.u64()?;
        self.memo = 0;
        Ok(())
    }
}
