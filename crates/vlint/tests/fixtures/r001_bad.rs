//! R001 true positives: an RNG draw reachable from a shard read-phase
//! closure — once transitively (through `draw`), once directly.

pub struct Lcg {
    state: u64,
}

impl Lcg {
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.state
    }
}

pub struct Scanner {
    runner: ShardRunner,
    rng: Lcg,
}

impl Scanner {
    fn draw(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn scan(&mut self, frames: &[u64]) -> Vec<u64> {
        self.runner.run(frames, |_, &f| f ^ self.draw())
    }

    fn salt(&mut self, frames: &[u64]) -> Vec<u64> {
        self.runner.run(frames, |_, &f| self.rng.next_u64() ^ f)
    }
}
