//! G001 true positives: raw pressure-signal reads outside the governor.

fn should_throttle(m: &Machine) -> bool {
    let free = m.buddy().free_frames();
    free < 64
}

fn headroom(alloc: &BuddyAllocator) -> usize {
    alloc.free_frames()
}
