//! Fixture: P001 true negative — the typed PteFlags API.

pub fn trap(pte: Pte) -> Pte {
    pte.set(PteFlags::RESERVED | PteFlags::NO_CACHE)
}

pub fn without_huge(pte: Pte) -> PteFlags {
    pte.flags() & !PteFlags::HUGE
}
