//! Fixture: P001 true positive — raw u64 PTE twiddling outside the MMU.

pub fn trap(pte: u64) -> u64 {
    pte | (1u64 << 51)
}

pub fn low_flags(raw_pte: u64) -> u64 {
    raw_pte & 0xfff
}
