//! O001 true negatives: latency flows through the typed wrapper.

fn resolve(m: &mut Machine, dt: u64) {
    m.obs_mut().observe_fault_latency(dt as f64);
}

fn classify(m: &mut Machine, f: FrameId) -> u64 {
    m.observed_hash(f)
}

#[cfg(test)]
mod tests {
    #[test]
    fn histogram_assertions_are_exempt() {
        let mut r = MetricsRegistry::new();
        r.observe("h", 1.0);
    }
}
