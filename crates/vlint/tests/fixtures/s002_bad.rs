//! S002 true positive: load restores fields out of save order — the
//! positional wire format would deserialize `a`'s bytes into `b`.

pub struct Pair {
    pub a: u64,
    pub b: u64,
}

impl Snapshot for Pair {
    fn save(&self, w: &mut Writer) {
        w.u64(self.a);
        w.u64(self.b);
    }

    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.b = r.u64()?;
        self.a = r.u64()?;
        Ok(())
    }
}
