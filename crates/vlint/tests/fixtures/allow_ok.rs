//! Fixture: V001 true negative — a reasoned allow suppresses its rule on
//! the annotated line and the line below.

// vlint: allow(D002, interned keys are pre-sorted before any iteration)
use std::collections::HashMap;

pub struct Index {
    // vlint: allow(D002, never iterated — lookup only)
    map: HashMap<u64, u64>,
}
