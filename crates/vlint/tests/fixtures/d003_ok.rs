//! Fixture: D003 true negative — configuration arrives explicitly.

pub struct Config {
    pub seed: u64,
}

pub fn seed(cfg: &Config) -> u64 {
    cfg.seed
}
