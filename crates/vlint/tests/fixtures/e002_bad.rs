//! Fixture: E002 true positive — truncating casts on frame/cycle values.

pub fn pack(frame: u64, cycles: u64) -> (u32, u32) {
    (frame as u32, cycles as u32)
}

pub fn short_gen(write_gen: u64) -> u16 {
    write_gen as u16
}
