//! Fixture: D004 true positive — platform-conditional simulation code.

#[cfg(target_os = "linux")]
pub fn page_size() -> u64 {
    4096
}

pub fn is_fast() -> bool {
    cfg!(windows)
}
