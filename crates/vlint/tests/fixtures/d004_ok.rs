//! Fixture: D004 true negative — feature gates and test gates are fine.

#[cfg(feature = "slow-tests")]
pub fn exhaustive() {}

#[cfg(not(test))]
pub fn live_only() {}
