//! Fixture: E001 true positive — undocumented panic in simulation code.

pub fn translate(addr: u64) -> u64 {
    if addr > 0x0007_ffff_ffff_ffff {
        panic!("address out of range");
    }
    addr >> 12
}

pub fn select(kind: u8) -> u8 {
    match kind {
        0 | 1 => kind,
        _ => unreachable!(),
    }
}
