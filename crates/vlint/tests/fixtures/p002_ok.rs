//! Fixture: P002 true negative — f64 bit-casts (snapshot wire format)
//! and typed PTE accessors.

pub fn save_f64(w: &mut Writer, v: f64) {
    w.u64(v.to_bits());
}

pub fn load_f64(r: &mut Reader) -> f64 {
    f64::from_bits(r.u64())
}

pub fn is_trapped(pte: Pte) -> bool {
    pte.has(PteFlags::RESERVED)
}
