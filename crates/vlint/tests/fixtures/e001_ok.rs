//! Fixture: E001 true negative — documented contracts, debug-only
//! invariants, and test code.

/// Translates a virtual address.
///
/// # Panics
///
/// Panics if `addr` exceeds the canonical range — the simulator's
/// equivalent of a bus fault.
pub fn translate(addr: u64) -> u64 {
    assert!(addr <= 0x0007_ffff_ffff_ffff, "address out of range");
    addr >> 12
}

pub fn reconcile(fast: usize, slow: usize) -> usize {
    debug_assert_eq!(fast, slow, "counter out of sync");
    fast
}

#[cfg(test)]
mod tests {
    #[test]
    fn translate_works() {
        assert_eq!(super::translate(4096), 1);
    }
}
