//! Fixture: W001 true positive — mutating frame contents without a
//! write-generation bump leaves stale memoized hashes behind.

pub struct PhysMemory {
    data: Vec<[u8; 4096]>,
    write_gen: Vec<u64>,
}

impl PhysMemory {
    pub fn write_byte(&mut self, frame: usize, off: usize, v: u8) {
        self.data[frame][off] = v;
    }
}
