//! Fixture: D002 true negative — ordered collections.

use std::collections::{BTreeMap, BTreeSet};

pub struct Index {
    by_frame: BTreeMap<u64, u64>,
    live: BTreeSet<u64>,
}
