//! Fixture: V001 true positive — an allow annotation without a reason.

use std::collections::HashMap; // vlint: allow(D002)

pub struct Index {
    map: HashMap<u64, u64>,
}
