//! Fixture: D003 true positive — environment read in simulation code.

pub fn seed() -> u64 {
    match std::env::var("VUSION_SEED") {
        Ok(s) => s.parse().unwrap_or(0),
        Err(_) => 0,
    }
}
