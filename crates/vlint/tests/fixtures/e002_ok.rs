//! Fixture: E002 true negative — widening casts and index conversions.

pub fn index(frame: FrameId) -> usize {
    frame.0 as usize
}

pub fn widen(frame: u32) -> u64 {
    frame as u64
}
