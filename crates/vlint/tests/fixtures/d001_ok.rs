//! Fixture: D001 true negative — `Instant` as simulator vocabulary.

pub enum Phase {
    Begin(SpanKind),
    Instant(InstantKind),
}

pub fn classify(kind: InstantKind) -> Phase {
    Phase::Instant(kind)
}
