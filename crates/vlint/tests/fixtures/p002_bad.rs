//! Fixture: P002 true positive — the raw-bits escape hatches outside
//! vusion-mmu.

pub fn decode(raw: u64) -> PteFlags {
    PteFlags::from_bits(raw)
}

pub fn encode(leaf: &Leaf) -> u64 {
    leaf.pte.to_bits()
}
