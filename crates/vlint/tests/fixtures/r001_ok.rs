//! R001 true negative: the read phase stays pure (hashing through the
//! FrameReadView); the RNG draw happens in the serial commit phase,
//! after the runner joins.

pub struct Scanner {
    runner: ShardRunner,
    rng: Lcg,
}

impl Scanner {
    fn scan(&mut self, frames: &[u64], view: &FrameReadView<'_>) -> u64 {
        let hashes = self.runner.run(frames, |_, &f| view.hash_page(f));
        let salt = self.rng.next_u64();
        hashes.iter().fold(salt, |acc, h| acc ^ h)
    }
}
