//! S002 true negative: load mirrors save's field order exactly.

pub struct Pair {
    pub a: u64,
    pub b: u64,
}

impl Snapshot for Pair {
    fn save(&self, w: &mut Writer) {
        w.u64(self.a);
        w.u64(self.b);
    }

    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.a = r.u64()?;
        self.b = r.u64()?;
        Ok(())
    }
}
