//! O001 true positives: ad-hoc latency sampling outside the recorder.

fn resolve(m: &mut Machine, dt: u64) {
    m.obs_mut().metrics_mut().observe("fault.latency_ns", dt as f64);
}

fn time_scan(reg: &mut MetricsRegistry, ns: u64) {
    reg.observe("scan.latency_ns", ns as f64);
}
