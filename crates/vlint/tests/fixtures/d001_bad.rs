//! Fixture: D001 true positive — host wall-clock in simulation code.

use std::time::Instant;

pub fn elapsed_ns() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
