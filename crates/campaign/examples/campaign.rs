//! Run a full DST campaign from the command line.
//!
//! ```text
//! cargo run --release -p vusion-campaign --example campaign -- \
//!     --seeds 200 --threads 8 --out target/campaign --verify
//! ```
//!
//! Flags:
//!
//! * `--seeds N` — seeds per (engine, plan, crash) cell (default 200)
//! * `--threads N` — worker threads (default 4)
//! * `--out DIR` — write `coverage.json` + shrunk `.vbun` bundles there
//! * `--verify` — re-run the whole campaign single-threaded and fail
//!   unless the two reports are byte-identical
//! * `--selftest` — also run a small poison-invariant campaign and fail
//!   unless the planted failure is caught and shrunk to ≤ 10% of its
//!   original journal
//!
//! Exit status is non-zero on invariant violations, a failed `--verify`
//! comparison, or a failed `--selftest`.

use std::path::PathBuf;
use std::process::ExitCode;

use vusion::prelude::*;
use vusion_campaign::{poison_invariant, Campaign, CampaignConfig, ScenarioShape};

struct Args {
    seeds: u64,
    threads: usize,
    out: Option<PathBuf>,
    verify: bool,
    selftest: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 200,
        threads: 4,
        out: None,
        verify: false,
        selftest: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--verify" => args.verify = true,
            "--selftest" => args.selftest = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The poison self-test: plant a known-bad invariant in a tiny campaign
/// and insist the pipeline catches it, shrinks it to ≤ 10% of the
/// journal, and keeps the failure signature stable under replay.
fn selftest() -> Result<(), String> {
    let mut cfg = CampaignConfig::standard(1);
    cfg.engines = vec![EngineKind::VUsion];
    cfg.plans = vec![("none".to_string(), FaultPlan::NONE)];
    cfg.crashes = vec![("none".to_string(), CrashPlan::NONE)];
    cfg.writes_per_round = 64;
    let report = Campaign::new(cfg)
        .map_err(|e| e.to_string())?
        .with_invariant(poison_invariant())
        .run()
        .map_err(|e| e.to_string())?;
    let f = report
        .failures
        .first()
        .ok_or("selftest: poison invariant never fired")?;
    if !f.reproducible {
        return Err("selftest: poison failure did not replay".into());
    }
    if f.shrunk_events * 10 > f.original_events {
        return Err(format!(
            "selftest: shrink left {}/{} events (> 10%)",
            f.shrunk_events, f.original_events
        ));
    }
    let sys = f
        .bundle
        .replay_with(&f.bundle.journal)
        .map_err(|e| e.to_string())?;
    let inv = poison_invariant();
    if (inv.check)(&sys, &ScenarioShape::small()).is_none() {
        return Err("selftest: shrunk journal lost the failure".into());
    }
    println!(
        "selftest: poison failure shrunk {} -> {} events in {} replays",
        f.original_events, f.shrunk_events, f.replays
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut cfg = CampaignConfig::standard(args.seeds);
    cfg.threads = args.threads.max(1);
    println!(
        "campaign: {} runs ({} engines x {} plans x {} crash plans x {} seeds) on {} threads",
        cfg.total_runs(),
        cfg.engines.len(),
        cfg.plans.len(),
        cfg.crashes.len(),
        cfg.seeds,
        cfg.threads
    );

    let campaign = match Campaign::new(cfg.clone()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match campaign.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "coverage: {} keys, {} uncovered, {} failures",
        report.coverage.len(),
        report.uncovered.len(),
        report.failures.len()
    );
    for key in &report.uncovered {
        println!("  uncovered: {key}");
    }
    for f in &report.failures {
        println!(
            "  FAIL {} [{}] {} ({} -> {} events{})",
            f.label,
            f.invariant,
            f.detail,
            f.original_events,
            f.shrunk_events,
            if f.reproducible {
                ""
            } else {
                ", NOT reproducible"
            }
        );
    }

    let mut ok = true;

    if args.verify {
        let mut serial_cfg = cfg;
        serial_cfg.threads = 1;
        match Campaign::new(serial_cfg).and_then(|c| c.run()) {
            Ok(serial) if serial.to_json() == report.to_json() => {
                println!(
                    "verify: {}-thread report is byte-identical to 1-thread",
                    args.threads.max(1)
                );
            }
            Ok(_) => {
                eprintln!("verify: FAILED — report differs between thread counts");
                ok = false;
            }
            Err(e) => {
                eprintln!("verify: {e}");
                ok = false;
            }
        }
    }

    if args.selftest {
        if let Err(e) = selftest() {
            eprintln!("{e}");
            ok = false;
        }
    }

    if let Some(dir) = &args.out {
        match report.dump(dir) {
            Ok(written) => println!("wrote {} artifacts to {}", written.len(), dir.display()),
            Err(e) => {
                eprintln!("error writing artifacts: {e}");
                ok = false;
            }
        }
    }

    if report.has_failures() {
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
