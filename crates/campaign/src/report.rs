//! Campaign results: merged coverage, the failure ledger, and a
//! canonical JSON rendering that is byte-identical for identical
//! campaigns regardless of thread count.

use std::path::{Path, PathBuf};

use vusion::repro::{Bundle, BundleError};
use vusion_obs::json::quote;
use vusion_obs::Coverage;

/// One reproducible failure, after shrinking.
pub struct FailureReport {
    /// Enumeration index of the run that failed.
    pub index: usize,
    /// The failing run's label (`engine/plan/crash/seed`).
    pub label: String,
    /// Name of the violated invariant.
    pub invariant: String,
    /// Stable failure signature (FNV of the invariant name); the shrunk
    /// journal reproduces this exact signature.
    pub signature: u64,
    /// The violation message from the original run.
    pub detail: String,
    /// Journal length captured at failure time.
    pub original_events: usize,
    /// Journal length after delta-debugging.
    pub shrunk_events: usize,
    /// Restore+replay probes the shrinker spent.
    pub replays: u64,
    /// Whether the failure reproduced under replay at all. When false the
    /// failure was flaky-by-construction (not journal-derived) and
    /// `bundle` is the unshrunk original.
    pub reproducible: bool,
    /// The repro artifact (shrunk when `reproducible`).
    pub bundle: Bundle,
}

impl FailureReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"index\":{},\"label\":{},\"invariant\":{},\"signature\":\"{:#018x}\",\
             \"detail\":{},\"original_events\":{},\"shrunk_events\":{},\"replays\":{},\
             \"reproducible\":{}}}",
            self.index,
            quote(&self.label),
            quote(&self.invariant),
            self.signature,
            quote(&self.detail),
            self.original_events,
            self.shrunk_events,
            self.replays,
            self.reproducible
        )
    }
}

/// Everything a finished campaign produced.
pub struct CampaignReport {
    /// Work items executed.
    pub runs: usize,
    /// Merged coverage across every run (reduced in enumeration order).
    pub coverage: Coverage,
    /// Expected coverage keys that no run hit — the campaign's blind
    /// spots (e.g. an armed crash site that never fired).
    pub uncovered: Vec<String>,
    /// Reproducible failures, in enumeration order, shrunk.
    pub failures: Vec<FailureReport>,
}

impl CampaignReport {
    /// True when any run violated an invariant.
    pub fn has_failures(&self) -> bool {
        !self.failures.is_empty()
    }

    /// True when any failure both reproduced under replay and still
    /// carries a journal the shrinker could not discard entirely.
    pub fn has_reproducible_failures(&self) -> bool {
        self.failures.iter().any(|f| f.reproducible)
    }

    /// Canonical JSON: sorted coverage keys, failures in enumeration
    /// order, no timing or thread-count fields. Two campaigns over the
    /// same axes produce byte-identical output — `diff` is the
    /// regression test.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"runs\":{},", self.runs));
        out.push_str("\"coverage\":");
        out.push_str(&self.coverage.to_json());
        out.push_str(",\"uncovered\":[");
        for (i, key) in self.uncovered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&quote(key));
        }
        out.push_str("],\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Writes the report (`coverage.json`) plus every failure's repro
    /// bundle (`*.vbun`, rotated) into `dir`. Returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn dump(&self, dir: &Path) -> Result<Vec<PathBuf>, BundleError> {
        std::fs::create_dir_all(dir).map_err(BundleError::Io)?;
        let mut written = Vec::new();
        let report_path = dir.join("coverage.json");
        let mut body = self.to_json();
        body.push('\n');
        std::fs::write(&report_path, body).map_err(BundleError::Io)?;
        written.push(report_path);
        for f in &self.failures {
            written.push(f.bundle.dump_to(dir)?);
        }
        Ok(written)
    }
}
