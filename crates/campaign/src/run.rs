//! One campaign work item: build a seeded system, churn it under the
//! item's fault/crash plans, check invariants after every round, and
//! account everything the run exercised into a [`Coverage`] map.
//!
//! Execution is a pure function of the [`RunSpec`]: the churn RNG is
//! derived from the spec alone (never from which worker thread picked the
//! item up), so the orchestrator can schedule items on any number of
//! threads and still merge byte-identical results.

use vusion::prelude::*;
use vusion::repro::Bundle;
use vusion_mem::PageType;
use vusion_obs::Coverage;
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};
use vusion_snapshot::fnv1a64;

/// The memory layout every campaign run uses: `procs` processes, each
/// with `pages` mergeable pages at `base`. Invariant checkers walk this
/// shape instead of rediscovering the layout from page tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioShape {
    /// Processes spawned (pids `0..procs`).
    pub procs: usize,
    /// Mergeable pages mapped per process.
    pub pages: u64,
    /// First virtual address of the region (page aligned).
    pub base: VirtAddr,
}

impl ScenarioShape {
    /// The default small scenario (mirrors the chaos suite's, scaled for
    /// thousands of runs per campaign).
    pub fn small() -> Self {
        Self {
            procs: 2,
            pages: 6,
            base: VirtAddr(0x10000),
        }
    }
}

/// The predicate shape of an [`Invariant`]: inspects a replayed system
/// and returns `None` when the invariant holds, or a human-readable
/// violation otherwise.
pub type InvariantFn = fn(&System<Box<dyn FusionPolicy>>, &ScenarioShape) -> Option<String>;

/// A named check over a replayable system state. Plain function pointers
/// (not closures) so invariants are trivially shareable across worker
/// threads and printable by name in reports.
#[derive(Clone, Copy)]
pub struct Invariant {
    /// Stable name: coverage keys (`invariant.<name>.checks`) and failure
    /// signatures derive from it.
    pub name: &'static str,
    /// The predicate.
    pub check: InvariantFn,
}

impl Invariant {
    /// The failure signature this invariant stamps on bundles: a stable
    /// hash of its name. Shrinking preserves the signature, so a shrunk
    /// journal provably reproduces the *same* failure, not just *a*
    /// failure.
    pub fn signature(&self) -> u64 {
        fnv1a64(self.name.as_bytes())
    }
}

/// Frame accounting stays sound: [`Machine::audit_frames`] comes back
/// empty (no mapped-but-free frames, no refcount drift).
fn frame_audit(sys: &System<Box<dyn FusionPolicy>>, _shape: &ScenarioShape) -> Option<String> {
    let violations = sys.machine.audit_frames();
    if violations.is_empty() {
        None
    } else {
        Some(violations.join("; "))
    }
}

/// No merged (Fused, refcount ≥ 2) frame is ever mapped writable — the
/// CoW-soundness half of the paper's security argument.
fn merged_page_writable(
    sys: &System<Box<dyn FusionPolicy>>,
    shape: &ScenarioShape,
) -> Option<String> {
    for p in 0..shape.procs {
        let pid = Pid(p);
        for pg in 0..shape.pages {
            let va = VirtAddr(shape.base.0 + pg * PAGE_SIZE);
            let Some(leaf) = sys.machine.leaf(pid, va) else {
                continue;
            };
            if !leaf.pte.is_present() {
                continue;
            }
            let frame = leaf.pte.frame();
            let info = sys.machine.mem().info(frame);
            if info.page_type == PageType::Fused
                && info.refcount >= 2
                && leaf.pte.has(PteFlags::WRITABLE)
            {
                return Some(format!(
                    "merged frame {frame:?} mapped writable at p{p} page {pg}"
                ));
            }
        }
    }
    None
}

/// A deliberately failing invariant for validating the campaign pipeline
/// end to end: it fires as soon as any scenario page contains the byte
/// `7` — which the churn script writes with probability 1/8 per store —
/// so a campaign armed with it reliably produces a failure whose minimal
/// repro is a single journaled write. Tests and the CI self-test use it
/// to prove that failure capture, shrinking, and signature-stable replay
/// actually work; it is never part of [`default_invariants`].
pub fn poison_invariant() -> Invariant {
    Invariant {
        name: "poison-byte",
        check: poison_byte,
    }
}

fn poison_byte(sys: &System<Box<dyn FusionPolicy>>, shape: &ScenarioShape) -> Option<String> {
    for p in 0..shape.procs {
        let pid = Pid(p);
        for pg in 0..shape.pages {
            let va = VirtAddr(shape.base.0 + pg * PAGE_SIZE);
            let Some(pa) = sys.machine.translate_quiet(pid, va) else {
                continue;
            };
            let page = sys.machine.mem().page(pa.frame());
            if let Some(off) = page.iter().position(|&b| b == 7) {
                return Some(format!("poison byte 7 at p{p} page {pg} offset {off}"));
            }
        }
    }
    None
}

/// The invariants every campaign checks after every churn round.
pub fn default_invariants() -> Vec<Invariant> {
    vec![
        Invariant {
            name: "frame-audit",
            check: frame_audit,
        },
        Invariant {
            name: "merged-page-writable",
            check: merged_page_writable,
        },
    ]
}

/// One fully specified work item. Everything a worker needs — and
/// everything determinism needs — lives here.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Position in the campaign's canonical enumeration; results merge in
    /// this order regardless of which thread ran the item.
    pub index: usize,
    /// Engine under test.
    pub engine: EngineKind,
    /// Fault-plan axis label.
    pub plan_name: String,
    /// Fault plan injected after setup.
    pub plan: FaultPlan,
    /// Crash-plan axis label (`"none"` for the uncrashed variant).
    pub crash_name: String,
    /// Crash plan armed after the base snapshot.
    pub crash: CrashPlan,
    /// Machine master seed.
    pub seed: u64,
    /// Churn rounds (invariants are checked after each).
    pub rounds: u32,
    /// Random single-byte writes per round.
    pub writes_per_round: u32,
    /// Memory layout of the run.
    pub shape: ScenarioShape,
    /// Pressure governor installed before the base snapshot (`None` runs
    /// ungoverned, the pre-governor campaign exactly).
    pub governor: Option<PressureConfig>,
}

impl RunSpec {
    /// Human-readable identity, stable across runs.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/seed {:#x}",
            self.engine.slug(),
            self.plan_name,
            self.crash_name,
            self.seed
        )
    }

    /// The churn RNG seed: a pure function of the spec (never of the
    /// worker thread), folding in every axis so two items sharing a
    /// machine seed still draw decorrelated scripts.
    pub fn churn_seed(&self) -> u64 {
        fnv1a64(self.label().as_bytes()) ^ self.seed
    }

    /// Rebuilds the machine config this spec runs under.
    pub fn config(&self) -> MachineConfig {
        MachineConfig::test_small()
            .with_seed(self.seed)
            .with_fault_plan(self.plan)
            .with_crash_plan(self.crash)
    }
}

/// A violated invariant, packaged for shrinking.
pub struct RunFailure {
    /// Which invariant fired.
    pub invariant: Invariant,
    /// The violation message.
    pub detail: String,
    /// Unshrunk repro bundle captured at failure time.
    pub bundle: Bundle,
}

/// Everything one work item produced.
pub struct RunOutput {
    /// The spec's enumeration index.
    pub index: usize,
    /// The spec's label (for failure reports).
    pub label: String,
    /// Coverage points this run hit.
    pub coverage: Coverage,
    /// The first invariant violation, if any (the run stops at it).
    pub failure: Option<RunFailure>,
}

/// Executes one work item start to finish. Deterministic per spec.
pub fn execute(spec: &RunSpec, invariants: &[Invariant]) -> RunOutput {
    let shape = spec.shape;
    let cfg = spec.config();
    let mut sys = spec.engine.build_system(cfg);
    let mut coverage = Coverage::new();
    let label = spec.label();

    // Setup (never subject to injection): spawn, map, populate with
    // duplicate-prone fills so the scanner has merge bait.
    let pids: Vec<Pid> = (0..shape.procs)
        .map(|i| sys.machine.spawn(&format!("p{i}")).expect("spawn"))
        .collect();
    for &pid in &pids {
        sys.machine
            .mmap(pid, Vma::anon(shape.base, shape.pages, Protection::rw()));
        sys.machine.madvise_mergeable(pid, shape.base, shape.pages);
    }
    for &pid in &pids {
        for pg in 0..shape.pages {
            let fill = (pg % 4) as u8 + 1;
            sys.write_page(
                pid,
                VirtAddr(shape.base.0 + pg * PAGE_SIZE),
                &[fill; PAGE_SIZE as usize],
            );
        }
    }

    // Install the governor (if armed) while still in setup: it travels
    // in the base snapshot, so every shrink/replay of a failure runs
    // under the same control law.
    if let Some(gcfg) = spec.governor {
        sys.set_pressure_governor(gcfg)
            .expect("valid governor config");
    }

    // Arm everything, then snapshot: any later failure bundles as "this
    // state, then these journaled calls".
    sys.machine.arm_faults();
    sys.machine.enable_tracing();
    sys.machine.enable_surface();
    sys.machine.enable_journal();
    sys.machine.clear_journal();
    let base_snapshot = sys.snapshot();
    let crashes_armed = spec.crash.is_active();
    if crashes_armed {
        sys.machine.arm_crashes();
    }

    // Churn: random single-byte stores plus forced scan passes, with the
    // armed invariants checked after every round.
    let mut rng = StdRng::seed_from_u64(spec.churn_seed());
    let mut failure = None;
    'rounds: for _ in 0..spec.rounds {
        for _ in 0..spec.writes_per_round {
            let p = rng.random_range(0..shape.procs);
            let pg = rng.random_range(0..shape.pages);
            let off = rng.random_range(0..PAGE_SIZE);
            let v = rng.random_range(0..8u8);
            let _ = sys.try_write(pids[p], VirtAddr(shape.base.0 + pg * PAGE_SIZE + off), v);
        }
        sys.force_scans(rng.random_range(1..4usize));
        for inv in invariants {
            coverage.mark(&format!("invariant.{}.checks", inv.name));
            if let Some(detail) = (inv.check)(&sys, &shape) {
                coverage.mark(&format!("failure.{}", inv.name));
                let bundle = Bundle::capture(
                    spec.engine,
                    &cfg,
                    base_snapshot.clone(),
                    &sys,
                    crashes_armed,
                    &label,
                    &detail,
                );
                failure = Some(RunFailure {
                    invariant: *inv,
                    detail,
                    bundle,
                });
                break 'rounds;
            }
        }
    }

    // Account what the run exercised.
    coverage.mark(&format!("engine.{}.runs", spec.engine.slug()));
    coverage.mark(&format!("plan.{}.runs", spec.plan_name));
    if let Some(site) = spec.crash.site {
        coverage.mark(&format!("site.{}.armed", site.label()));
        // add(.., 0) declares the key even when the site never fired, so
        // the report can show the miss instead of omitting the row.
        coverage.add(
            &format!("site.{}.fired", site.label()),
            sys.machine.crashes_fired(),
        );
    }
    if spec.governor.is_some() {
        let g = sys.pressure_governor().stats();
        coverage.add("pressure.samples", g.samples);
        coverage.add("pressure.escalations", g.escalations);
        coverage.add("pressure.de_escalations", g.de_escalations);
        coverage.add("pressure.drain_rungs", g.drain_rungs);
        coverage.add("pressure.shrink_rungs", g.shrink_rungs);
        coverage.add("pressure.defer_rungs", g.defer_rungs);
        coverage.add("pressure.budget_used", g.budget_used);
    }
    let inj = sys.machine.injection_breakdown();
    coverage.add("fault.alloc.injected", inj.injected_allocs);
    coverage.add("fault.checksum.injected", inj.injected_checksums);
    coverage.add("fault.bitflip.injected", inj.injected_bitflips);
    // Which side channels each engine actually exercised: declared even
    // at zero so the report shows an unobserved channel as a miss.
    let [faults, llc, dram, tlb] = sys.machine.obs().surface().channel_event_totals();
    let slug = spec.engine.slug();
    coverage.add(&format!("surface.{slug}.fault_events"), faults);
    coverage.add(&format!("surface.{slug}.llc_events"), llc);
    coverage.add(&format!("surface.{slug}.dram_events"), dram);
    coverage.add(&format!("surface.{slug}.tlb_events"), tlb);
    for (_cat, kind, stat) in sys.machine.obs().tracer().profile().iter() {
        coverage.add(&format!("span.{}", kind.name()), stat.count);
    }
    for ev in sys.machine.journal() {
        coverage.mark(&format!("journal.{}", ev.kind().label()));
    }

    RunOutput {
        index: spec.index,
        label,
        coverage,
        failure,
    }
}
