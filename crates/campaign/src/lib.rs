//! # vusion-campaign — deterministic multi-seed DST campaigns
//!
//! The chaos suite (`tests/chaos.rs`) proves the engines survive *one*
//! adversarial schedule at a time. A **campaign** sweeps the whole grid —
//! hundreds of seeds × fault-plan ladder × crash-site axis × every engine
//! — on real worker threads, and still produces **byte-identical**
//! results no matter how many threads run it:
//!
//! * work is pre-partitioned by enumeration index (`index % threads`),
//!   never pulled from a shared queue, so the item→thread mapping is a
//!   pure function of the config;
//! * every run's churn RNG derives from its [`RunSpec`] alone;
//! * results merge in enumeration order, and the report's canonical JSON
//!   carries no timing or thread-count fields.
//!
//! Failing runs are captured as [`Bundle`](vusion::repro::Bundle) repro
//! artifacts and then delta-debugged ([`vusion::repro::Bundle::shrink`])
//! down to the smallest journal suffix still reproducing the same failure
//! signature. The final [`CampaignReport`] pairs the failure ledger with
//! a fault-coverage map: which crash sites actually fired, which fault
//! kinds actually injected, which tracer spans the sweep exercised — and,
//! crucially, which expected points stayed *uncovered*.
//!
//! ```
//! use vusion_campaign::{Campaign, CampaignConfig};
//!
//! let cfg = CampaignConfig::standard(4); // 4 seeds per cell, small demo
//! let report = Campaign::new(cfg).expect("valid config").run().expect("campaign");
//! assert!(!report.has_failures());
//! assert!(report.coverage.get("engine.ksm.runs") > 0);
//! ```

pub mod report;
pub mod run;

use std::fmt;

use vusion::prelude::*;
use vusion_snapshot::SnapshotError;

pub use report::{CampaignReport, FailureReport};
pub use run::{
    default_invariants, poison_invariant, Invariant, InvariantFn, RunSpec, ScenarioShape,
};

use report::FailureReport as Failure;
use run::{execute, RunOutput};
use vusion_obs::Coverage;

/// Everything that parameterizes a campaign. The report is a pure
/// function of this struct (plus the armed invariants) — `threads` only
/// changes wall-clock time, never output bytes.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// First machine seed; run `i` of a cell uses `seed_base + i`.
    pub seed_base: u64,
    /// Seeds per (engine, plan, crash) cell.
    pub seeds: u64,
    /// Engines under test.
    pub engines: Vec<EngineKind>,
    /// Fault-plan axis, as `(name, plan)` pairs.
    pub plans: Vec<(String, FaultPlan)>,
    /// Crash-plan axis, as `(name, plan)` pairs (include
    /// [`CrashPlan::NONE`] for the uncrashed variant).
    pub crashes: Vec<(String, CrashPlan)>,
    /// Churn rounds per run.
    pub rounds: u32,
    /// Random writes per round.
    pub writes_per_round: u32,
    /// Memory layout of every run.
    pub shape: ScenarioShape,
    /// Worker threads. Any value ≥ 1 yields identical output.
    pub threads: usize,
    /// Replay budget per failure for the shrinker.
    pub shrink_budget: u64,
    /// Pressure governor armed on every run (`None` sweeps ungoverned).
    pub governor: Option<PressureConfig>,
}

impl CampaignConfig {
    /// The standard sweep: KSM, WPF and VUsion over the full fault-plan
    /// ladder and every crash site (plus the uncrashed variant), `seeds`
    /// seeds per cell.
    pub fn standard(seeds: u64) -> Self {
        let plans = FaultPlan::campaign_ladder()
            .into_iter()
            .map(|(n, p)| (n.to_string(), p))
            .collect();
        let mut crashes = vec![("none".to_string(), CrashPlan::NONE)];
        for site in CrashSite::ALL {
            crashes.push((site.label().to_string(), CrashPlan::at(site, 2)));
        }
        Self {
            seed_base: 0x5eed_0000,
            seeds,
            engines: vec![EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion],
            plans,
            crashes,
            rounds: 3,
            writes_per_round: 48,
            shape: ScenarioShape::small(),
            threads: 1,
            shrink_budget: 512,
            governor: None,
        }
    }

    /// The pressure-churn sweep: every engine over the OOM-burst
    /// [`FaultPlan::pressure_ladder`] with the governor armed on a tight
    /// budget band, uncrashed. This is the cell grid that proves graceful
    /// degradation at campaign scale: the `pressure.*` coverage keys must
    /// move, and the default invariants (frame audit, CoW soundness) must
    /// hold at every ladder rung.
    pub fn pressure_churn(seeds: u64) -> Self {
        let plans = FaultPlan::pressure_ladder()
            .into_iter()
            .map(|(n, p)| (n.to_string(), p))
            .collect();
        let governor = PressureConfig {
            budget_min: 4,
            budget_max: 32,
            budget_add: 8,
            ..PressureConfig::standard()
        };
        Self {
            seed_base: 0x9e55_0000,
            seeds,
            engines: vec![EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion],
            plans,
            crashes: vec![("none".to_string(), CrashPlan::NONE)],
            // A larger working set than `standard()`: merge/unmerge churn
            // must allocate often enough that clustered injected failures
            // actually reach the governor's OOM-delta signal.
            rounds: 4,
            writes_per_round: 96,
            shape: ScenarioShape {
                procs: 3,
                pages: 24,
                base: VirtAddr(0x10000),
            },
            threads: 1,
            shrink_budget: 512,
            governor: Some(governor),
        }
    }

    /// Total work items this config enumerates.
    pub fn total_runs(&self) -> usize {
        self.engines.len() * self.plans.len() * self.crashes.len() * self.seeds as usize
    }
}

/// Why a campaign could not be constructed or executed.
#[derive(Debug)]
pub enum CampaignError {
    /// A config axis is empty (nothing to sweep).
    EmptyAxis(&'static str),
    /// A fault plan on the axis is degenerate.
    Plan(FaultPlanError),
    /// Snapshot restore/replay failed while shrinking a failure — the
    /// bundle machinery itself is broken, which outranks any test result.
    Snapshot(SnapshotError),
    /// A worker thread panicked (a bug in an invariant or the harness).
    WorkerPanicked,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyAxis(axis) => write!(f, "campaign config: empty {axis} axis"),
            Self::Plan(e) => write!(f, "campaign config: {e}"),
            Self::Snapshot(e) => write!(f, "campaign shrink: {e}"),
            Self::WorkerPanicked => write!(f, "campaign worker thread panicked"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<FaultPlanError> for CampaignError {
    fn from(e: FaultPlanError) -> Self {
        Self::Plan(e)
    }
}

impl From<SnapshotError> for CampaignError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// A validated, ready-to-run campaign.
pub struct Campaign {
    cfg: CampaignConfig,
    invariants: Vec<Invariant>,
}

impl Campaign {
    /// Validates the config: non-empty axes, at least one seed, every
    /// fault plan well-formed.
    ///
    /// # Errors
    ///
    /// [`CampaignError::EmptyAxis`] or [`CampaignError::Plan`].
    pub fn new(cfg: CampaignConfig) -> Result<Self, CampaignError> {
        if cfg.engines.is_empty() {
            return Err(CampaignError::EmptyAxis("engine"));
        }
        if cfg.plans.is_empty() {
            return Err(CampaignError::EmptyAxis("fault-plan"));
        }
        if cfg.crashes.is_empty() {
            return Err(CampaignError::EmptyAxis("crash-plan"));
        }
        if cfg.seeds == 0 {
            return Err(CampaignError::EmptyAxis("seed"));
        }
        for (_, plan) in &cfg.plans {
            plan.validate()?;
        }
        Ok(Self {
            cfg,
            invariants: default_invariants(),
        })
    }

    /// Arms an extra invariant on top of the defaults (tests use this to
    /// plant [`poison_invariant`] and watch the pipeline catch it).
    #[must_use]
    pub fn with_invariant(mut self, inv: Invariant) -> Self {
        self.invariants.push(inv);
        self
    }

    /// The campaign's canonical work-item enumeration. Index order is the
    /// merge order; the item→thread mapping is `index % threads`.
    pub fn specs(&self) -> Vec<RunSpec> {
        let cfg = &self.cfg;
        let mut specs = Vec::with_capacity(cfg.total_runs());
        for engine in &cfg.engines {
            for (plan_name, plan) in &cfg.plans {
                for (crash_name, crash) in &cfg.crashes {
                    for s in 0..cfg.seeds {
                        specs.push(RunSpec {
                            index: specs.len(),
                            engine: *engine,
                            plan_name: plan_name.clone(),
                            plan: *plan,
                            crash_name: crash_name.clone(),
                            crash: *crash,
                            seed: cfg.seed_base + s,
                            rounds: cfg.rounds,
                            writes_per_round: cfg.writes_per_round,
                            shape: cfg.shape,
                            governor: cfg.governor,
                        });
                    }
                }
            }
        }
        specs
    }

    /// Coverage keys this config promises to exercise; anything on this
    /// list that no run hits lands in [`CampaignReport::uncovered`].
    fn expected_coverage(&self) -> Vec<String> {
        let mut expected = Vec::new();
        for engine in &self.cfg.engines {
            expected.push(format!("engine.{}.runs", engine.slug()));
        }
        for (name, _) in &self.cfg.plans {
            expected.push(format!("plan.{name}.runs"));
        }
        for (_, crash) in &self.cfg.crashes {
            if let Some(site) = crash.site {
                expected.push(format!("site.{}.fired", site.label()));
            }
        }
        let any = |f: fn(&FaultPlan) -> bool| self.cfg.plans.iter().any(|(_, p)| f(p));
        if any(|p| p.alloc_every_nth > 0 || p.alloc_fail_prob > 0.0) {
            expected.push("fault.alloc.injected".to_string());
        }
        if any(|p| p.checksum_corrupt_prob > 0.0) {
            expected.push("fault.checksum.injected".to_string());
        }
        if any(|p| p.scan_bitflip_prob > 0.0) {
            expected.push("fault.bitflip.injected".to_string());
        }
        for inv in &self.invariants {
            expected.push(format!("invariant.{}.checks", inv.name));
        }
        // Spans every fusion engine's scan loop must enter on this
        // scenario; the engine-specific spans (fake_merge, rerandomize)
        // stay out so KSM-only sweeps do not report false gaps.
        expected.push("span.scan_pass".to_string());
        expected.push("span.merge".to_string());
        if self.cfg.governor.is_some() {
            // An armed governor samples on every wakeup; with any
            // OOM-injecting plan on the axis it must also escalate.
            expected.push("pressure.samples".to_string());
            if any(|p| p.alloc_every_nth > 0 || p.alloc_fail_prob > 0.0) {
                expected.push("pressure.escalations".to_string());
            }
        }
        expected.sort();
        expected.dedup();
        expected
    }

    /// Runs the sweep on `cfg.threads` workers, merges in enumeration
    /// order, shrinks every captured failure, and reports.
    ///
    /// # Errors
    ///
    /// [`CampaignError::WorkerPanicked`] if an invariant or the harness
    /// panicked on a worker; [`CampaignError::Snapshot`] if a failure's
    /// bundle would not restore/replay while shrinking.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        let specs = self.specs();
        let threads = self.cfg.threads.max(1).min(specs.len().max(1));
        let invariants = &self.invariants;

        // Pre-partitioned fan-out: worker t owns indices ≡ t (mod
        // threads), in ascending order. No shared queue, no stealing —
        // the schedule is a pure function of the config.
        let mut outputs: Vec<Option<RunOutput>> = Vec::new();
        outputs.resize_with(specs.len(), || None);
        // vlint: allow(T001, whole-run fan-out — each worker owns complete deterministic simulations and reports merge in seed order)
        let shards: Vec<Result<Vec<RunOutput>, CampaignError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let specs = &specs;
                    scope.spawn(move || {
                        specs
                            .iter()
                            .skip(t)
                            .step_by(threads)
                            .map(|spec| execute(spec, invariants))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| CampaignError::WorkerPanicked))
                .collect()
        });
        for shard in shards {
            for out in shard? {
                let slot = out.index;
                outputs[slot] = Some(out);
            }
        }

        // Deterministic reduction: merge coverage and collect failures in
        // enumeration order, then shrink each failure sequentially.
        let mut coverage = Coverage::new();
        let mut failures = Vec::new();
        for out in outputs.into_iter().flatten() {
            coverage.merge(&out.coverage);
            if let Some(fail) = out.failure {
                let inv = fail.invariant;
                let shape = self.cfg.shape;
                let checker = move |sys: &System<Box<dyn FusionPolicy>>| {
                    (inv.check)(sys, &shape).map(|_| inv.signature())
                };
                let outcome = fail.bundle.shrink(checker, self.cfg.shrink_budget)?;
                let report = match outcome {
                    Some(sh) => Failure {
                        index: out.index,
                        label: out.label,
                        invariant: inv.name.to_string(),
                        signature: sh.signature,
                        detail: fail.detail,
                        original_events: sh.original_len,
                        shrunk_events: sh.shrunk_len(),
                        replays: sh.replays,
                        reproducible: true,
                        bundle: sh.shrunk,
                    },
                    // The full journal did not reproduce the violation:
                    // keep the raw bundle and flag it non-reproducible.
                    None => Failure {
                        index: out.index,
                        label: out.label,
                        invariant: inv.name.to_string(),
                        signature: inv.signature(),
                        detail: fail.detail,
                        original_events: fail.bundle.journal.len(),
                        shrunk_events: fail.bundle.journal.len(),
                        replays: 1,
                        reproducible: false,
                        bundle: fail.bundle,
                    },
                };
                failures.push(report);
            }
        }

        let uncovered = coverage.missing(self.expected_coverage());
        Ok(CampaignReport {
            runs: specs.len(),
            coverage,
            uncovered,
            failures,
        })
    }
}
