//! Campaign orchestrator integration tests: thread-count invariance,
//! failure capture + shrinking, coverage accounting, artifact dumping.

use vusion::prelude::*;
use vusion_campaign::{poison_invariant, Campaign, CampaignConfig, ScenarioShape};

/// A small-but-real grid: 2 engines × 2 plans × 3 crash plans × 3 seeds.
fn small_config() -> CampaignConfig {
    CampaignConfig {
        seed_base: 0x1000,
        seeds: 3,
        engines: vec![EngineKind::Ksm, EngineKind::VUsion],
        plans: vec![
            ("none".to_string(), FaultPlan::NONE),
            ("every_3rd_alloc".to_string(), FaultPlan::every_nth_alloc(3)),
        ],
        crashes: vec![
            ("none".to_string(), CrashPlan::NONE),
            ("mid_scan".to_string(), CrashPlan::at(CrashSite::MidScan, 2)),
            (
                "mid_merge".to_string(),
                CrashPlan::at(CrashSite::MidMerge, 1),
            ),
        ],
        rounds: 2,
        writes_per_round: 32,
        shape: ScenarioShape::small(),
        threads: 1,
        shrink_budget: 256,
        governor: None,
    }
}

#[test]
fn pressure_churn_campaign_degrades_gracefully() {
    let cfg = CampaignConfig::pressure_churn(2);
    let total = cfg.total_runs();
    let serial = Campaign::new(cfg.clone())
        .expect("valid config")
        .run()
        .expect("campaign");
    assert_eq!(serial.runs, total);
    // Graceful degradation: no invariant (frame audit, CoW soundness)
    // breaks at any ladder rung, while the governor demonstrably worked —
    // it sampled every wakeup, the OOM-burst plans pushed it up the
    // bands, and the throttled budgets were actually consumed.
    assert!(
        !serial.has_failures(),
        "invariants violated under pressure: {}",
        serial.to_json()
    );
    assert!(serial.coverage.get("pressure.samples") > 0);
    assert!(
        serial.coverage.get("pressure.escalations") > 0,
        "OOM-burst plans never escalated: {}",
        serial.to_json()
    );
    assert!(serial.coverage.get("pressure.budget_used") > 0);
    assert!(serial.coverage.get("fault.alloc.injected") > 0);
    assert!(
        !serial.uncovered.iter().any(|k| k.starts_with("pressure.")),
        "promised pressure coverage missing: {:?}",
        serial.uncovered
    );
    // And the governed sweep stays byte-identical across worker counts.
    let mut cfg7 = CampaignConfig::pressure_churn(2);
    cfg7.threads = 7;
    let parallel = Campaign::new(cfg7)
        .expect("valid config")
        .run()
        .expect("campaign");
    assert_eq!(serial.to_json(), parallel.to_json());
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let mut cfg = small_config();
    cfg.threads = 1;
    let serial = Campaign::new(cfg.clone())
        .expect("valid config")
        .run()
        .expect("campaign")
        .to_json();

    for threads in [2, 4, 7] {
        cfg.threads = threads;
        let parallel = Campaign::new(cfg.clone())
            .expect("valid config")
            .run()
            .expect("campaign")
            .to_json();
        assert_eq!(
            serial, parallel,
            "report diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn clean_campaign_reports_no_failures_and_counts_runs() {
    let cfg = small_config();
    let total = cfg.total_runs();
    let report = Campaign::new(cfg)
        .expect("valid config")
        .run()
        .expect("campaign");
    assert_eq!(report.runs, total);
    assert!(
        !report.has_failures(),
        "default invariants violated: {}",
        report.to_json()
    );
    // Every engine and plan on the axis ran (36 total = 18 per engine,
    // 18 per plan, 12 per crash cell).
    assert_eq!(report.coverage.get("engine.ksm.runs"), 18);
    assert_eq!(report.coverage.get("engine.vusion.runs"), 18);
    assert_eq!(report.coverage.get("plan.none.runs"), 18);
    assert_eq!(report.coverage.get("plan.every_3rd_alloc.runs"), 18);
    // Invariants were actually checked, and the scanner actually scanned.
    assert!(report.coverage.get("invariant.frame-audit.checks") >= 36);
    assert!(report.coverage.get("span.scan_pass") > 0);
    assert!(report.coverage.get("span.merge") > 0);
    // Armed crash sites are declared even if some never fire.
    assert!(report.coverage.covered("site.mid_scan.armed"));
    assert_eq!(report.coverage.get("site.mid_scan.armed"), 12);
    // The alloc-fault ladder injected something somewhere.
    assert!(report.coverage.get("fault.alloc.injected") > 0);
    // Journal event kinds were accounted.
    assert!(report.coverage.get("journal.write") > 0);
    assert!(report.coverage.get("journal.force_scans") > 0);
}

#[test]
fn poison_invariant_failure_is_caught_shrunk_and_signature_stable() {
    let mut cfg = small_config();
    // One cell, one seed, heavy write pressure: the poison byte (value 7,
    // drawn with probability 1/8 per write) lands in round one, so the
    // captured journal is ≥ 33 events while the minimal repro is a single
    // write.
    cfg.engines = vec![EngineKind::VUsion];
    cfg.plans = vec![("none".to_string(), FaultPlan::NONE)];
    cfg.crashes = vec![("none".to_string(), CrashPlan::NONE)];
    cfg.seeds = 1;
    cfg.writes_per_round = 64;
    let report = Campaign::new(cfg)
        .expect("valid config")
        .with_invariant(poison_invariant())
        .run()
        .expect("campaign");

    assert!(report.has_failures(), "poison invariant never fired");
    assert!(report.has_reproducible_failures());
    let f = &report.failures[0];
    assert_eq!(f.invariant, "poison-byte");
    assert!(
        f.reproducible,
        "poison failure must replay from the journal"
    );
    assert!(
        f.original_events >= 60,
        "expected a full round of journaled churn, got {}",
        f.original_events
    );
    assert!(
        f.shrunk_events * 10 <= f.original_events,
        "shrink left {} of {} events (> 10%)",
        f.shrunk_events,
        f.original_events
    );
    // The shrunk bundle replays green through the ordinary replay path...
    let outcome = f.bundle.replay().expect("shrunk bundle replays");
    assert!(outcome.reproduced(), "shrunk digest drifted");
    // ...and the violation it reproduces is the *same* failure.
    let sys = f.bundle.replay_with(&f.bundle.journal).expect("replay");
    let inv = poison_invariant();
    let shape = ScenarioShape::small();
    assert!(
        (inv.check)(&sys, &shape).is_some(),
        "shrunk journal no longer violates the poison invariant"
    );
    assert_eq!(f.signature, inv.signature());
    // Coverage recorded the failure too.
    assert!(report.coverage.covered("failure.poison-byte"));
}

#[test]
fn crash_sites_fire_and_uncovered_lists_real_gaps() {
    let mut cfg = small_config();
    cfg.seeds = 4;
    let report = Campaign::new(cfg)
        .expect("valid config")
        .run()
        .expect("campaign");
    // With merge-heavy churn, an armed mid-scan crash at depth 2 fires.
    assert!(
        report.coverage.get("site.mid_scan.fired") > 0,
        "armed mid-scan crashes never fired: {}",
        report.to_json()
    );
    // Whatever is genuinely uncovered must be a key the config promised;
    // covered promises must not be listed.
    for key in &report.uncovered {
        assert_eq!(report.coverage.get(key), 0, "{key} listed but covered");
    }
    assert!(!report.uncovered.iter().any(|k| k == "span.scan_pass"));
}

#[test]
fn dump_writes_report_and_bundles() {
    let dir = std::env::temp_dir().join(format!("vusion-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = small_config();
    cfg.engines = vec![EngineKind::Ksm];
    cfg.plans = vec![("none".to_string(), FaultPlan::NONE)];
    cfg.crashes = vec![("none".to_string(), CrashPlan::NONE)];
    cfg.seeds = 1;
    cfg.writes_per_round = 64;
    let report = Campaign::new(cfg)
        .expect("valid config")
        .with_invariant(poison_invariant())
        .run()
        .expect("campaign");
    assert!(report.has_failures());

    let written = report.dump(&dir).expect("dump");
    assert!(written[0].ends_with("coverage.json"));
    let body = std::fs::read_to_string(&written[0]).expect("read report");
    assert_eq!(body.trim_end(), report.to_json());
    assert!(written
        .iter()
        .skip(1)
        .all(|p| p.extension().is_some_and(|e| e == "vbun")));
    // The dumped bundle round-trips and replays.
    let latest = vusion::repro::latest_bundle(&dir)
        .expect("scan dir")
        .expect("a bundle was dumped");
    let bytes = std::fs::read(latest).expect("read bundle");
    let bundle = vusion::repro::Bundle::from_bytes(&bytes).expect("decode");
    assert!(bundle.replay().expect("replay").reproduced());

    let _ = std::fs::remove_dir_all(&dir);
}
