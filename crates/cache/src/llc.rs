//! Physically indexed set-associative LLC with true-LRU replacement.

use vusion_mem::{FrameId, PhysAddr, PAGE_SIZE};

/// Geometry of the simulated LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Number of cache sets.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: u64,
}

impl LlcConfig {
    /// The paper's testbed: Intel Xeon E3-1240 v5, 8 MiB LLC, 8192 sets of
    /// 16 ways of 64-byte lines, 128 page colors.
    pub fn xeon_e3_1240_v5() -> Self {
        Self {
            sets: 8192,
            ways: 16,
            line_size: 64,
        }
    }

    /// A small geometry for fast unit tests (16 colors).
    pub fn tiny() -> Self {
        Self {
            sets: 1024,
            ways: 4,
            line_size: 64,
        }
    }

    /// Number of cache sets a 4 KiB page covers.
    pub fn sets_per_page(&self) -> usize {
        (PAGE_SIZE / self.line_size) as usize
    }

    /// Number of page colors: distinct mappings of pages onto set groups.
    pub fn colors(&self) -> usize {
        self.sets / self.sets_per_page()
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }
}

/// Whether an access hit or missed the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line was present.
    Hit,
    /// Line was absent and has been filled (possibly evicting LRU).
    Miss,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of hits.
    pub hits: u64,
    /// Number of misses.
    pub misses: u64,
    /// Number of evictions caused by fills.
    pub evictions: u64,
    /// Number of explicit flushes that actually removed a line.
    pub flushes: u64,
}

/// One cache set: tags ordered most-recently-used first.
#[derive(Debug, Clone, Default)]
struct Set {
    /// Global line indices (physical address / line size), MRU first.
    lines: Vec<u64>,
}

/// The simulated last-level cache.
pub struct Llc {
    cfg: LlcConfig,
    sets: Vec<Set>,
    stats: CacheStats,
}

impl Llc {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways, or pages
    /// smaller than one line group).
    pub fn new(cfg: LlcConfig) -> Self {
        assert!(
            cfg.sets > 0 && cfg.ways > 0 && cfg.line_size > 0,
            "degenerate cache geometry"
        );
        assert!(
            cfg.sets.is_multiple_of(cfg.sets_per_page()),
            "sets must be a multiple of sets-per-page"
        );
        Self {
            cfg,
            sets: vec![Set::default(); cfg.sets],
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The set index a physical address maps to.
    pub fn set_index(&self, addr: PhysAddr) -> usize {
        ((addr.0 / self.cfg.line_size) % self.cfg.sets as u64) as usize
    }

    /// The color of a physical frame: which group of sets its lines occupy.
    ///
    /// If the first line of two pages shares a set, all 64 lines do (§5.1),
    /// so the color is fully determined by the frame number.
    pub fn color_of(&self, frame: FrameId) -> usize {
        (frame.0 % self.cfg.colors() as u64) as usize
    }

    /// Accesses `addr`, updating LRU state; returns hit or miss.
    pub fn access(&mut self, addr: PhysAddr) -> CacheOutcome {
        self.access_evicting(addr).0
    }

    /// Like [`Self::access`], additionally reporting the global line index
    /// a capacity miss evicted (if any). State transitions are identical
    /// to `access` — this exists so the side-channel surface recorder can
    /// attribute evictions to the frames whose lines were displaced.
    /// The victim frame is `line * line_size / PAGE_SIZE`.
    pub fn access_evicting(&mut self, addr: PhysAddr) -> (CacheOutcome, Option<u64>) {
        let line = addr.0 / self.cfg.line_size;
        let set_idx = self.set_index(addr);
        let ways = self.cfg.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.lines.iter().position(|&l| l == line) {
            let l = set.lines.remove(pos);
            set.lines.insert(0, l);
            self.stats.hits += 1;
            (CacheOutcome::Hit, None)
        } else {
            set.lines.insert(0, line);
            let evicted = if set.lines.len() > ways {
                self.stats.evictions += 1;
                set.lines.pop()
            } else {
                None
            };
            self.stats.misses += 1;
            (CacheOutcome::Miss, evicted)
        }
    }

    /// The line indices currently resident in `set` (MRU first). Used by
    /// snapshot-time occupancy walks; read-only.
    pub fn set_lines(&self, set: usize) -> &[u64] {
        &self.sets[set].lines
    }

    /// Checks presence without touching LRU state (attack helper mirroring a
    /// timing-only probe; real probes also access, so prefer [`Self::access`]
    /// in end-to-end attacks).
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let line = addr.0 / self.cfg.line_size;
        let set_idx = self.set_index(addr);
        self.sets[set_idx].lines.contains(&line)
    }

    /// Flushes one line (the `clflush` instruction).
    pub fn flush(&mut self, addr: PhysAddr) {
        let line = addr.0 / self.cfg.line_size;
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.lines.iter().position(|&l| l == line) {
            set.lines.remove(pos);
            self.stats.flushes += 1;
        }
    }

    /// Flushes every line of a frame.
    pub fn flush_frame(&mut self, frame: FrameId) {
        for i in 0..(PAGE_SIZE / self.cfg.line_size) {
            self.flush(frame.base() + i * self.cfg.line_size);
        }
    }

    /// Invalidates the entire cache (used between experiment repetitions).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.lines.clear();
        }
    }

    /// Returns `ways` physical addresses, one per distinct frame of the
    /// given color, that all map to the same cache set as `target_set`:
    /// an **eviction set** (§5.1). Frames are chosen from `candidates`.
    ///
    /// Returns `None` if `candidates` does not contain enough frames of the
    /// right color.
    pub fn eviction_set(&self, target_set: usize, candidates: &[FrameId]) -> Option<Vec<PhysAddr>> {
        let line_in_page = (target_set % self.cfg.sets_per_page()) as u64 * self.cfg.line_size;
        let color = target_set / self.cfg.sets_per_page();
        let mut out = Vec::with_capacity(self.cfg.ways);
        for &f in candidates {
            if self.color_of(f) == color {
                let addr = f.base() + line_in_page;
                debug_assert_eq!(self.set_index(addr), target_set);
                out.push(addr);
                if out.len() == self.cfg.ways {
                    return Some(out);
                }
            }
        }
        None
    }
}

impl vusion_snapshot::Snapshot for Llc {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.usize(self.cfg.sets);
        w.usize(self.cfg.ways);
        w.u64(self.cfg.line_size);
        for set in &self.sets {
            // MRU-first line order is the LRU state; it travels verbatim.
            w.u64s(&set.lines);
        }
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.evictions);
        w.u64(self.stats.flushes);
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        use vusion_snapshot::SnapshotError;
        if r.usize()? != self.cfg.sets
            || r.usize()? != self.cfg.ways
            || r.u64()? != self.cfg.line_size
        {
            return Err(SnapshotError::Corrupt("cache geometry mismatch"));
        }
        for set in &mut self.sets {
            set.lines = r.u64s()?;
        }
        self.stats = CacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
            evictions: r.u64()?,
            flushes: r.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Llc {
        Llc::new(LlcConfig::tiny())
    }

    #[test]
    fn paper_geometry_has_128_colors() {
        let cfg = LlcConfig::xeon_e3_1240_v5();
        assert_eq!(cfg.colors(), 128);
        assert_eq!(cfg.sets_per_page(), 64);
        assert_eq!(cfg.capacity(), 8 * 1024 * 1024);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(PhysAddr(0)), CacheOutcome::Miss);
        assert_eq!(c.access(PhysAddr(0)), CacheOutcome::Hit);
        assert_eq!(c.access(PhysAddr(32)), CacheOutcome::Hit, "same line");
        assert_eq!(c.access(PhysAddr(64)), CacheOutcome::Miss, "next line");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        let ways = c.config().ways as u64;
        let stride = c.config().sets as u64 * c.config().line_size;
        // Fill one set completely, then one more: the first line must go.
        for i in 0..=ways {
            assert_eq!(c.access(PhysAddr(i * stride)), CacheOutcome::Miss);
        }
        assert_eq!(
            c.access(PhysAddr(0)),
            CacheOutcome::Miss,
            "LRU line evicted"
        );
        // Re-inserting line 0 evicted line 1 (now the LRU); line 2 survives.
        assert_eq!(
            c.access(PhysAddr(2 * stride)),
            CacheOutcome::Hit,
            "younger line survives"
        );
    }

    #[test]
    fn flush_removes_line() {
        let mut c = tiny();
        c.access(PhysAddr(128));
        assert!(c.contains(PhysAddr(128)));
        c.flush(PhysAddr(128));
        assert!(!c.contains(PhysAddr(128)));
        assert_eq!(c.access(PhysAddr(128)), CacheOutcome::Miss);
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn flush_frame_removes_all_lines() {
        let mut c = tiny();
        let f = FrameId(3);
        for i in 0..64u64 {
            c.access(f.base() + i * 64);
        }
        c.flush_frame(f);
        for i in 0..64u64 {
            assert!(!c.contains(f.base() + i * 64));
        }
    }

    #[test]
    fn colors_repeat_with_period() {
        let c = tiny();
        let colors = c.config().colors();
        assert_eq!(c.color_of(FrameId(0)), c.color_of(FrameId(colors as u64)));
        assert_ne!(c.color_of(FrameId(0)), c.color_of(FrameId(1)));
    }

    #[test]
    fn pages_cover_consecutive_sets() {
        // The §5.1 observation: if the first lines of two pages share a set,
        // all 64 lines do.
        let c = tiny();
        let (a, b) = (FrameId(0), FrameId(c.config().colors() as u64));
        assert_eq!(c.set_index(a.base()), c.set_index(b.base()));
        for i in 0..64u64 {
            assert_eq!(
                c.set_index(a.base() + i * 64),
                c.set_index(b.base() + i * 64)
            );
        }
    }

    #[test]
    fn eviction_set_covers_target_set() {
        let mut c = tiny();
        let colors = c.config().colors() as u64;
        let ways = c.config().ways;
        // Candidate frames of every color, several rounds worth — starting
        // past the victim frame so the eviction set never aliases it.
        let candidates: Vec<FrameId> = (colors..colors * (ways as u64 + 2)).map(FrameId).collect();
        let target_set = 5 * c.config().sets_per_page() + 17; // Color 5, line 17.
        let ev = c
            .eviction_set(target_set, &candidates)
            .expect("enough candidates");
        assert_eq!(ev.len(), ways);
        for &a in &ev {
            assert_eq!(c.set_index(a), target_set);
        }
        // Priming with the eviction set evicts a victim line in that set.
        let victim = FrameId(5).base() + 17 * 64;
        assert_eq!(c.set_index(victim), target_set);
        c.access(victim);
        for &a in &ev {
            c.access(a);
        }
        assert!(!c.contains(victim), "PRIME must evict the victim line");
    }

    #[test]
    fn eviction_set_fails_without_candidates() {
        let c = tiny();
        let candidates: Vec<FrameId> = vec![FrameId(1)]; // Wrong color for set 0.
        assert!(c.eviction_set(0, &candidates).is_none());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = tiny();
        c.access(PhysAddr(0));
        c.clear();
        assert!(!c.contains(PhysAddr(0)));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = tiny();
        c.access(PhysAddr(0));
        c.access(PhysAddr(0));
        c.access(PhysAddr(64));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }
}
