//! Last-level cache (LLC) simulator.
//!
//! §5.1 of the paper introduces *merge-based* information-disclosure attacks
//! that observe the LLC instead of timing copy-on-write:
//!
//! * **Page color changes**: the evaluation machine (Intel Xeon E3-1240 v5)
//!   partitions its 8 MiB LLC into 8192 sets of 16 lines of 64 bytes; every
//!   4 KiB page covers 64 consecutive sets, so there are 8192/64 = 128 page
//!   colors. A PRIME+PROBE attacker can learn a page's color, and a color
//!   change after a fusion pass reveals a merge (`P_success = 127/128`).
//! * **Page sharing changes**: a FLUSH+RELOAD-style attacker detects that a
//!   victim access hit the *same physical line*, revealing sharing.
//!
//! This crate provides the physically indexed, set-associative, LRU cache
//! those attacks (and the AnC translation attack) run against. Timing is
//! returned as hit/miss outcomes; the kernel crate converts outcomes into
//! simulated nanoseconds.

pub mod llc;

pub use llc::{CacheOutcome, CacheStats, Llc, LlcConfig};
