//! Property-style tests for the LLC model, driven by the in-repo seeded
//! PRNG: each test sweeps many seeds so failures reproduce exactly by seed.

use vusion_cache::{CacheOutcome, Llc, LlcConfig};
use vusion_mem::{FrameId, PhysAddr};
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

const SEEDS: u64 = 64;

/// Inclusion: immediately re-accessing any address hits.
#[test]
fn reaccess_always_hits() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11c0);
        let n = rng.random_range(1..200usize);
        let mut c = Llc::new(LlcConfig::tiny());
        for _ in 0..n {
            let a = rng.random_range(0u64..(1 << 24));
            c.access(PhysAddr(a));
            assert_eq!(c.access(PhysAddr(a)), CacheOutcome::Hit, "seed {seed}");
        }
    }
}

/// Capacity: a set never holds more than `ways` distinct lines — the
/// (ways+1)-th distinct line of one set always evicts something.
#[test]
fn set_capacity_is_respected() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x22c0);
        let extra = rng.random_range(1u64..8);
        let cfg = LlcConfig::tiny();
        let mut c = Llc::new(cfg);
        let stride = cfg.sets as u64 * cfg.line_size;
        let n = cfg.ways as u64 + extra;
        for i in 0..n {
            c.access(PhysAddr(i * stride));
        }
        // Only the last `ways` lines can still be present.
        let mut present = 0;
        for i in 0..n {
            if c.contains(PhysAddr(i * stride)) {
                present += 1;
            }
        }
        assert_eq!(present, cfg.ways, "seed {seed}");
        // And the oldest is gone.
        assert!(!c.contains(PhysAddr(0)), "seed {seed}");
    }
}

/// Flush removes exactly the requested line, nothing else in the set.
#[test]
fn flush_is_precise() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x33c0);
        let keep = rng.random_range(1u64..4);
        let cfg = LlcConfig::tiny();
        let mut c = Llc::new(cfg);
        let stride = cfg.sets as u64 * cfg.line_size;
        for i in 0..=keep {
            c.access(PhysAddr(i * stride));
        }
        c.flush(PhysAddr(0));
        assert!(!c.contains(PhysAddr(0)), "seed {seed}");
        for i in 1..=keep {
            assert!(
                c.contains(PhysAddr(i * stride)),
                "seed {seed}: line {i} unexpectedly flushed"
            );
        }
    }
}

/// Page color is a pure function of the frame number with the
/// documented period, and all lines of a page share the color's sets.
#[test]
fn color_structure() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x44c0);
        let frame = rng.random_range(0u64..100_000);
        let c = Llc::new(LlcConfig::xeon_e3_1240_v5());
        let colors = c.config().colors() as u64;
        assert_eq!(
            c.color_of(FrameId(frame)),
            c.color_of(FrameId(frame + colors)),
            "seed {seed}"
        );
        let base_set = c.set_index(FrameId(frame).base());
        assert_eq!(base_set % c.config().sets_per_page(), 0, "seed {seed}");
        for line in 0..64u64 {
            assert_eq!(
                c.set_index(FrameId(frame).base() + line * 64),
                base_set + line as usize,
                "seed {seed}"
            );
        }
    }
}

/// Stats never lie: hits + misses equals the number of accesses.
#[test]
fn stats_balance() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55c0);
        let n = rng.random_range(1..300usize);
        let mut c = Llc::new(LlcConfig::tiny());
        for _ in 0..n {
            c.access(PhysAddr(rng.random_range(0u64..(1 << 20))));
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, n as u64, "seed {seed}");
    }
}
