//! Property tests for the LLC model.

use proptest::prelude::*;
use vusion_cache::{CacheOutcome, Llc, LlcConfig};
use vusion_mem::{FrameId, PhysAddr};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Inclusion: immediately re-accessing any address hits.
    #[test]
    fn reaccess_always_hits(addrs in proptest::collection::vec(0u64..(1 << 24), 1..200)) {
        let mut c = Llc::new(LlcConfig::tiny());
        for a in addrs {
            c.access(PhysAddr(a));
            prop_assert_eq!(c.access(PhysAddr(a)), CacheOutcome::Hit);
        }
    }

    /// Capacity: a set never holds more than `ways` distinct lines — the
    /// (ways+1)-th distinct line of one set always evicts something.
    #[test]
    fn set_capacity_is_respected(extra in 1u64..8) {
        let cfg = LlcConfig::tiny();
        let mut c = Llc::new(cfg);
        let stride = cfg.sets as u64 * cfg.line_size;
        let n = cfg.ways as u64 + extra;
        for i in 0..n {
            c.access(PhysAddr(i * stride));
        }
        // Only the last `ways` lines can still be present.
        let mut present = 0;
        for i in 0..n {
            if c.contains(PhysAddr(i * stride)) {
                present += 1;
            }
        }
        prop_assert_eq!(present, cfg.ways);
        // And the oldest is gone.
        prop_assert!(!c.contains(PhysAddr(0)));
    }

    /// Flush removes exactly the requested line, nothing else in the set.
    #[test]
    fn flush_is_precise(keep in 1u64..4) {
        let cfg = LlcConfig::tiny();
        let mut c = Llc::new(cfg);
        let stride = cfg.sets as u64 * cfg.line_size;
        for i in 0..=keep {
            c.access(PhysAddr(i * stride));
        }
        c.flush(PhysAddr(0));
        prop_assert!(!c.contains(PhysAddr(0)));
        for i in 1..=keep {
            prop_assert!(c.contains(PhysAddr(i * stride)), "line {} unexpectedly flushed", i);
        }
    }

    /// Page color is a pure function of the frame number with the
    /// documented period, and all lines of a page share the color's sets.
    #[test]
    fn color_structure(frame in 0u64..100_000) {
        let c = Llc::new(LlcConfig::xeon_e3_1240_v5());
        let colors = c.config().colors() as u64;
        prop_assert_eq!(c.color_of(FrameId(frame)), c.color_of(FrameId(frame + colors)));
        let base_set = c.set_index(FrameId(frame).base());
        prop_assert_eq!(base_set % c.config().sets_per_page(), 0);
        for line in 0..64u64 {
            prop_assert_eq!(c.set_index(FrameId(frame).base() + line * 64), base_set + line as usize);
        }
    }

    /// Stats never lie: hits + misses equals the number of accesses.
    #[test]
    fn stats_balance(addrs in proptest::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut c = Llc::new(LlcConfig::tiny());
        for &a in &addrs {
            c.access(PhysAddr(a));
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
    }
}
