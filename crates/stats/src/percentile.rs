//! Percentile computation for latency reporting.
//!
//! Tables 5 and 7 of the paper report 75th/90th/99th/99.9th latency
//! percentiles for Apache, Redis and Memcached. We use linear interpolation
//! between closest ranks (the same convention as `numpy.percentile`).

/// Returns the `p`-th percentile (0–100) of `sample` using linear
/// interpolation between closest ranks.
///
/// # Panics
///
/// Panics if the sample is empty or `p` is outside `[0, 100]`.
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    assert!(!sample.is_empty(), "percentile of empty sample");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be within [0, 100]"
    );
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// The latency percentiles the paper reports, computed in one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Percentiles {
    /// Computes the standard set of percentiles from a latency sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn of(sample: &[f64]) -> Self {
        let mut v = sample.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |p: f64| {
            let rank = p / 100.0 * (v.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                let frac = rank - lo as f64;
                v[lo] * (1.0 - frac) + v[hi] * frac
            }
        };
        Self {
            p75: pick(75.0),
            p90: pick(90.0),
            p99: pick(99.0),
            p999: pick(99.9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_sample() {
        let s = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&s, 50.0), 2.0);
    }

    #[test]
    fn median_interpolates_even_sample() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&s, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn extremes_are_min_and_max() {
        let s = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 9.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let s: Vec<f64> = (0..1000).map(f64::from).collect();
        let p = Percentiles::of(&s);
        assert!(p.p75 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999);
    }

    #[test]
    fn single_element_sample() {
        let p = Percentiles::of(&[42.0]);
        assert_eq!(p.p75, 42.0);
        assert_eq!(p.p999, 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 101.0);
    }
}
