//! Summary statistics: mean, standard deviation, geometric mean.
//!
//! Figures 7 and 8 of the paper summarize SPEC CPU2006 and PARSEC overheads
//! with geometric means, the standard convention for normalized benchmark
//! ratios.

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn mean(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "mean of empty sample");
    sample.iter().sum::<f64>() / sample.len() as f64
}

/// Sample standard deviation (Bessel-corrected); 0 for a single observation.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn std_dev(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "std_dev of empty sample");
    if sample.len() == 1 {
        return 0.0;
    }
    let m = mean(sample);
    let var = sample.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (sample.len() - 1) as f64;
    var.sqrt()
}

/// Geometric mean of a sample of positive values.
///
/// Computed in log space to avoid overflow.
///
/// # Panics
///
/// Panics if the sample is empty or contains a non-positive value.
pub fn geometric_mean(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "geometric mean of empty sample");
    let log_sum: f64 = sample
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / sample.len() as f64).exp()
}

/// Mean / std-dev / min / max of a sample, as reported in Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Computes all summary statistics in one pass over the sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn of(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "summary of empty sample");
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            mean: mean(sample),
            std_dev: std_dev(sample),
            min,
            max,
            n: sample.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constants() {
        assert_eq!(mean(&[4.0, 4.0, 4.0]), 4.0);
    }

    #[test]
    fn std_dev_of_known_sample() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: sample std-dev = sqrt(32/7).
        let s = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&s) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn std_dev_single_is_zero() {
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_leq_arithmetic() {
        let s = [1.0, 2.0, 3.0, 10.0, 0.5];
        assert!(geometric_mean(&s) <= mean(&s));
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
