//! Kolmogorov–Smirnov tests.
//!
//! Implements the classical two-sample KS test and the one-sample
//! goodness-of-fit test against the continuous uniform distribution, with
//! p-values computed from the asymptotic Kolmogorov distribution using the
//! standard series approximation (Numerical Recipes §14.3):
//!
//! ```text
//! Q_KS(λ) = 2 · Σ_{j≥1} (−1)^{j−1} · exp(−2 j² λ²)
//! ```

/// Outcome of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D`: the maximum absolute distance between the two
    /// cumulative distribution functions.
    pub statistic: f64,
    /// Approximate p-value: probability of observing a `D` at least this
    /// large under the null hypothesis that the distributions are equal.
    pub p_value: f64,
}

impl KsResult {
    /// Whether the null hypothesis ("same distribution") is *not* rejected at
    /// the given significance level.
    ///
    /// The paper uses this to conclude that VUsion's merged and unmerged
    /// timings are indistinguishable (p = 0.36 ≫ 0.05).
    pub fn same_distribution(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Survival function of the Kolmogorov distribution, `Q_KS(λ)`.
///
/// Returns 1.0 for tiny `λ` and 0.0 for large `λ`; the series converges very
/// quickly in the interesting range.
fn q_ks(lambda: f64) -> f64 {
    if lambda < 1e-9 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    let mut term_bound = f64::MAX;
    for j in 1..=100 {
        let j = f64::from(j);
        let term = (-2.0 * j * j * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        // The series is alternating with decreasing terms; stop once the
        // contribution is negligible.
        if term < 1e-12 * term_bound || term < 1e-16 {
            break;
        }
        term_bound = term;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// P-value for a KS statistic `d` with effective sample size `en`.
fn ks_p_value(d: f64, en: f64) -> f64 {
    let sqrt_en = en.sqrt();
    let lambda = (sqrt_en + 0.12 + 0.11 / sqrt_en) * d;
    q_ks(lambda)
}

/// Sorts a sample, rejecting NaNs by treating them as equal (callers never
/// produce NaN; simulated timings are finite).
fn sorted(sample: &[f64]) -> Vec<f64> {
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Tests the null hypothesis that `a` and `b` were drawn from the same
/// continuous distribution. Used in §9.1 to verify the **Same Behavior**
/// principle: timings of accesses to merged pages and to fake-merged pages
/// must be statistically indistinguishable.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "KS test requires non-empty samples"
    );
    let a = sorted(a);
    let b = sorted(b);
    let (n1, n2) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        let x1 = a[i];
        let x2 = b[j];
        if x1 <= x2 {
            i += 1;
        }
        if x2 <= x1 {
            j += 1;
        }
        let f1 = i as f64 / n1;
        let f2 = j as f64 / n2;
        d = d.max((f1 - f2).abs());
    }
    let en = n1 * n2 / (n1 + n2);
    KsResult {
        statistic: d,
        p_value: ks_p_value(d, en),
    }
}

/// One-sample KS goodness-of-fit test against the continuous uniform
/// distribution on `[lo, hi)`.
///
/// Used in §9.1 to verify the **Randomized Allocation** principle: the
/// offsets of physical pages chosen by VUsion's allocator must be uniform
/// over the random pool.
///
/// # Panics
///
/// Panics if the sample is empty or `hi <= lo`.
pub fn ks_test_uniform(sample: &[f64], lo: f64, hi: f64) -> KsResult {
    assert!(!sample.is_empty(), "KS test requires a non-empty sample");
    assert!(hi > lo, "uniform support must be a non-empty interval");
    let s = sorted(sample);
    let n = s.len() as f64;
    let mut d: f64 = 0.0;
    for (idx, &x) in s.iter().enumerate() {
        let cdf = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        let f_hi = (idx as f64 + 1.0) / n;
        let f_lo = idx as f64 / n;
        d = d.max((f_hi - cdf).abs()).max((cdf - f_lo).abs());
    }
    KsResult {
        statistic: d,
        p_value: ks_p_value(d, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vusion_rng::rngs::StdRng;
    use vusion_rng::{RngExt, SeedableRng};

    #[test]
    fn identical_samples_have_high_p() {
        let a: Vec<f64> = (0..500).map(f64::from).collect();
        let r = ks_two_sample(&a, &a);
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn same_distribution_not_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<f64> = (0..800).map(|_| rng.random_range(0.0..1.0)).collect();
        let b: Vec<f64> = (0..800).map(|_| rng.random_range(0.0..1.0)).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.same_distribution(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<f64> = (0..800).map(|_| rng.random_range(0.0..1.0)).collect();
        let b: Vec<f64> = (0..800).map(|_| rng.random_range(0.3..1.3)).collect();
        let r = ks_two_sample(&a, &b);
        assert!(!r.same_distribution(0.05), "p = {}", r.p_value);
        assert!(r.statistic > 0.2);
    }

    #[test]
    fn bimodal_vs_unimodal_rejected() {
        // This is exactly the Figure 5 vs Figure 6 situation: KSM write
        // timings are bimodal (fast store vs CoW fault), VUsion's are not.
        let mut rng = StdRng::seed_from_u64(11);
        let bimodal: Vec<f64> = (0..1000)
            .map(|i| {
                if i % 2 == 0 {
                    rng.random_range(90.0..110.0)
                } else {
                    rng.random_range(4900.0..5100.0)
                }
            })
            .collect();
        let unimodal: Vec<f64> = (0..1000)
            .map(|_| rng.random_range(4900.0..5100.0))
            .collect();
        let r = ks_two_sample(&bimodal, &unimodal);
        assert!(!r.same_distribution(0.05));
    }

    #[test]
    fn uniform_sample_passes_uniform_test() {
        let mut rng = StdRng::seed_from_u64(13);
        let s: Vec<f64> = (0..2000).map(|_| rng.random_range(0.0..32768.0)).collect();
        let r = ks_test_uniform(&s, 0.0, 32768.0);
        assert!(r.same_distribution(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn clustered_sample_fails_uniform_test() {
        // A LIFO buddy allocator reuses the most recently freed frames, so
        // its choices cluster; this must be detected as non-uniform.
        let s: Vec<f64> = (0..2000).map(|i| 100.0 + f64::from(i % 64)).collect();
        let r = ks_test_uniform(&s, 0.0, 32768.0);
        assert!(!r.same_distribution(0.05));
        assert!(r.statistic > 0.9);
    }

    #[test]
    fn q_ks_is_monotone_decreasing() {
        let mut prev = q_ks(0.01);
        for i in 1..60 {
            let cur = q_ks(0.01 + f64::from(i) * 0.05);
            assert!(cur <= prev + 1e-12);
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = ks_two_sample(&[], &[1.0]);
    }
}
