//! Fixed-bin histograms and peak detection.
//!
//! Figures 5 and 6 of the paper are frequency distributions of 1,000 timed
//! memory operations. Detecting whether such a distribution is bimodal (the
//! copy-on-write side channel of KSM) or unimodal (VUsion's uniform
//! copy-on-access path) is the core of the `fig05`/`fig06` experiments.

/// A histogram over `[lo, hi)` with equally sized bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram sized to cover a sample with the given bin count.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn from_sample(sample: &[f64], bins: usize) -> Self {
        assert!(!sample.is_empty(), "cannot infer range of an empty sample");
        let lo = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Widen slightly so the maximum lands inside the last bin.
        let span = (hi - lo).max(1e-9);
        let mut h = Self::new(lo, hi + span * 1e-6, bins);
        for &x in sample {
            h.record(x);
        }
        h
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins.len());
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Counts well-separated peaks ("modes") in the distribution.
    ///
    /// A peak is a contiguous run of bins whose count exceeds
    /// `threshold_frac · max_count`, separated from the next such run by at
    /// least one bin below the threshold. This is deliberately simple: the
    /// Figure 5 distribution has two far-apart peaks (plain store vs CoW
    /// fault) and Figure 6 has a single one, so a coarse detector suffices.
    pub fn peak_count(&self, threshold_frac: f64) -> usize {
        let max = self.bins.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 0;
        }
        let thr = (max as f64 * threshold_frac).max(1.0);
        let mut peaks = 0;
        let mut in_peak = false;
        for &c in &self.bins {
            let above = c as f64 >= thr;
            if above && !in_peak {
                peaks += 1;
            }
            in_peak = above;
        }
        peaks
    }

    /// Renders the histogram as text rows `center count` (one per non-empty
    /// bin), the format the bench harnesses print for figures.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        (0..self.bins.len())
            .filter(|&i| self.bins[i] > 0)
            .map(|i| (self.bin_center(i), self.bins[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.5);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(2.0);
        h.record(1.0); // Upper bound is exclusive.
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn from_sample_covers_extremes() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let h = Histogram::from_sample(&s, 4);
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn bimodal_detected_as_two_peaks() {
        let mut s = Vec::new();
        for i in 0..500 {
            s.push(100.0 + f64::from(i % 10));
            s.push(5000.0 + f64::from(i % 10));
        }
        let h = Histogram::from_sample(&s, 64);
        assert_eq!(h.peak_count(0.2), 2);
    }

    #[test]
    fn unimodal_detected_as_one_peak() {
        let s: Vec<f64> = (0..1000).map(|i| 5000.0 + f64::from(i) * 0.05).collect();
        let h = Histogram::from_sample(&s, 64);
        assert_eq!(h.peak_count(0.2), 1);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn rows_skip_empty_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.1);
        h.record(0.2);
        let rows = h.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 2);
    }

    #[test]
    fn empty_histogram_has_zero_peaks() {
        let h = Histogram::new(0.0, 1.0, 8);
        assert_eq!(h.peak_count(0.3), 0);
    }
}
