//! Statistical toolkit used throughout the VUsion reproduction.
//!
//! The paper's security evaluation (§9.1) relies on two statistical tests:
//!
//! * a **two-sample Kolmogorov–Smirnov test** to show that read/write timings
//!   of merged and unmerged pages follow the same distribution under VUsion
//!   (the paper reports p = 0.36), and
//! * a **KS goodness-of-fit test against the uniform distribution** to show
//!   that physical-page allocations performed by VUsion's randomized
//!   allocator are uniform (the paper reports p = 0.44).
//!
//! The performance evaluation additionally needs latency percentiles
//! (Tables 5 and 7), geometric means (Figures 7 and 8) and frequency
//! distributions / histograms (Figures 5 and 6). All of those utilities live
//! here, implemented from scratch so the workspace stays dependency-free.

pub mod histogram;
pub mod ks;
pub mod percentile;
pub mod summary;

pub use histogram::Histogram;
pub use ks::{ks_test_uniform, ks_two_sample, KsResult};
pub use percentile::{percentile, Percentiles};
pub use summary::{geometric_mean, mean, std_dev, Summary};
