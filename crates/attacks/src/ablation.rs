//! Ablation study: remove one VUsion mechanism at a time and show the
//! corresponding channel reopen.
//!
//! §7.1 motivates three design decisions beyond the headline S⊕F/FM/RA:
//! the PCD bit (stops prefetch), deferred free (equalizes the merged and
//! fake-merged fault paths), and per-round re-randomization of backing
//! frames (stops cross-scan coloring). Each ablated variant here is the
//! full engine minus exactly one of those; the paired probe demonstrates
//! the leak the mechanism exists to close.

use vusion_core::{VUsion, VUsionConfig};
use vusion_kernel::{Machine, MachineConfig, Pid, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};
use vusion_stats::{ks_two_sample, KsResult};

use crate::common::labeled_page;

/// Which mechanism to remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Full engine (secure reference).
    None,
    /// No Caching-Disabled bit on trapped PTEs.
    NoPcd,
    /// Synchronous frees in the fault handler.
    NoDeferredFree,
    /// No per-round backing-frame re-randomization.
    NoRerandomize,
}

impl Ablation {
    /// All variants, reference first.
    pub fn all() -> [Ablation; 4] {
        [
            Ablation::None,
            Ablation::NoPcd,
            Ablation::NoDeferredFree,
            Ablation::NoRerandomize,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Ablation::None => "full VUsion",
            Ablation::NoPcd => "- PCD bit",
            Ablation::NoDeferredFree => "- deferred free",
            Ablation::NoRerandomize => "- re-randomize",
        }
    }

    fn config(self) -> VUsionConfig {
        let mut cfg = VUsionConfig {
            pool_frames: 256,
            ..Default::default()
        };
        match self {
            Ablation::None => {}
            Ablation::NoPcd => cfg.ablate_pcd = true,
            Ablation::NoDeferredFree => cfg.ablate_deferred_free = true,
            Ablation::NoRerandomize => cfg.ablate_rerandomize = true,
        }
        cfg
    }
}

const BASE: u64 = 0x10000;

fn build(ablation: Ablation) -> (System<VUsion>, Pid, Pid) {
    let mut m = Machine::new(MachineConfig::test_small());
    let a = m.spawn("attacker").expect("spawn");
    let v = m.spawn("victim").expect("spawn");
    for pid in [a, v] {
        m.mmap(pid, Vma::anon(VirtAddr(BASE), 128, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(BASE), 128);
    }
    let policy = VUsion::new(&mut m, ablation.config());
    (System::new(m, policy), a, v)
}

/// Probe 1 — prefetch leak: can the attacker load a trapped page into the
/// cache with `prefetch` (no fault, no unmerge)? Returns `true` if yes.
pub fn prefetch_leaks(ablation: Ablation) -> bool {
    let (mut sys, a, _v) = build(ablation);
    sys.write_page(a, VirtAddr(BASE), &labeled_page(0x11));
    sys.force_scans(16);
    assert!(
        sys.policy.is_managed(a, VirtAddr(BASE)),
        "page must be under management"
    );
    let pa = sys
        .machine
        .translate_quiet(a, VirtAddr(BASE))
        .expect("mapped");
    sys.machine.llc_mut().flush_frame(pa.frame());
    sys.prefetch(a, VirtAddr(BASE));
    sys.machine.llc().contains(pa)
}

/// Probe 2 — fault-path timing: KS test between copy-on-access times of
/// merged pages and fake-merged pages.
pub fn coa_timing_asymmetry(ablation: Ablation) -> KsResult {
    let (mut sys, a, v) = build(ablation);
    const N: u64 = 60;
    for i in 0..N {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        sys.write_page(a, va, &labeled_page(0x700 + i));
        if i % 2 == 0 {
            sys.write_page(v, va, &labeled_page(0x700 + i)); // Merged.
        }
    }
    sys.force_scans(24);
    let mut merged = Vec::new();
    let mut fake = Vec::new();
    for i in 0..N {
        let va = VirtAddr(BASE + i * PAGE_SIZE);
        if !sys.policy.is_managed(a, va) {
            continue;
        }
        let t0 = sys.machine.now_ns();
        sys.read(a, va);
        let dt = (sys.machine.now_ns() - t0) as f64;
        if i % 2 == 0 {
            merged.push(dt);
        } else {
            fake.push(dt);
        }
    }
    // NOTE: reads of *merged* pages leave the shared frame alive (dummy /
    // no free), reads of fake-merged pages kill their private frame.
    ks_two_sample(&merged, &fake)
}

/// Probe 3 — cross-scan frame stability: does a fake-merged page keep its
/// backing frame across full scan rounds (letting a page-coloring attacker
/// correlate)? Returns `true` if the frame was stable (leaky).
pub fn backing_frame_stable_across_rounds(ablation: Ablation) -> bool {
    let (mut sys, a, _v) = build(ablation);
    sys.write_page(a, VirtAddr(BASE), &labeled_page(0x33));
    sys.force_scans(16);
    assert!(sys.policy.is_managed(a, VirtAddr(BASE)));
    let f1 = sys
        .machine
        .translate_quiet(a, VirtAddr(BASE))
        .expect("mapped")
        .frame();
    let rounds = sys.policy.stats().full_rounds;
    while sys.policy.stats().full_rounds < rounds + 3 {
        sys.force_scans(8);
    }
    let f2 = sys
        .machine
        .translate_quiet(a, VirtAddr(BASE))
        .expect("mapped")
        .frame();
    f1 == f2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_engine_blocks_prefetch() {
        assert!(!prefetch_leaks(Ablation::None));
    }

    #[test]
    fn removing_pcd_reopens_prefetch_channel() {
        assert!(
            prefetch_leaks(Ablation::NoPcd),
            "without PCD, prefetch loads trapped pages"
        );
    }

    #[test]
    fn full_engine_has_symmetric_fault_timing() {
        let ks = coa_timing_asymmetry(Ablation::None);
        assert!(ks.same_distribution(0.05), "p = {}", ks.p_value);
    }

    #[test]
    fn removing_deferred_free_reopens_timing_channel() {
        let ks = coa_timing_asymmetry(Ablation::NoDeferredFree);
        assert!(
            !ks.same_distribution(0.05),
            "synchronous frees must separate the distributions (p = {})",
            ks.p_value
        );
    }

    #[test]
    fn full_engine_rerandomizes_backing_frames() {
        assert!(!backing_frame_stable_across_rounds(Ablation::None));
    }

    #[test]
    fn removing_rerandomization_stabilizes_frames() {
        assert!(
            backing_frame_stable_across_rounds(Ablation::NoRerandomize),
            "without decision (iii) the backing frame persists across rounds"
        );
    }

    #[test]
    fn ablations_do_not_break_correctness() {
        // Even insecure variants must preserve memory semantics.
        for ab in Ablation::all() {
            let (mut sys, a, v) = build(ab);
            sys.write_page(a, VirtAddr(BASE), &labeled_page(0x99));
            sys.write_page(v, VirtAddr(BASE), &labeled_page(0x99));
            sys.force_scans(20);
            assert_eq!(
                sys.read_page(a, VirtAddr(BASE)),
                labeled_page(0x99),
                "{ab:?}"
            );
            assert_eq!(
                sys.read_page(v, VirtAddr(BASE)),
                labeled_page(0x99),
                "{ab:?}"
            );
        }
    }
}
