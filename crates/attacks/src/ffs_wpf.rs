//! Reuse-based Flip Feng Shui against Windows Page Fusion (§5.2, new).
//!
//! WPF backs fused pages with *new* frames, so classic Flip Feng Shui
//! fails — but its `MiAllocatePagesForMdl`-style allocator reserves frames
//! from the end of physical memory every pass, and frames freed by
//! copy-on-write unmerges are reused near-perfectly by the next pass
//! (Figure 3). Moreover, backing frames are assigned in *sorted hash
//! order*, so the attacker chooses the physical adjacency of fused pages
//! through their contents (double-sided Rowhammer without huge pages).
//!
//! The attack follows §5.2's recipe:
//!
//! 1. Allocate many pages, write pair-wise duplicates, let WPF merge them
//!    into a contiguous run of tree frames.
//! 2. Hammer the fused run (reads only!) to template a vulnerable fused
//!    frame; note its *rank* in the hash order.
//! 3. Trigger CoW on everything to release the run back to the allocator.
//! 4. Craft a new duplicate set where the page duplicating the victim's
//!    secret sits at exactly the templated rank; after the next pass the
//!    secret is backed by the vulnerable frame.
//! 5. Hammer again; the victim's secret is corrupted.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, Pid, System};
use vusion_mem::{content_hash, FrameId, VirtAddr};

use crate::common::{labeled_page, settle, AttackVerdict, TwinSetup};

/// Outcome of the reuse-based Flip Feng Shui attack.
#[derive(Debug, Clone)]
pub struct ReuseFfsOutcome {
    /// Whether pass 1 produced a contiguous descending run of tree frames.
    pub run_contiguous: bool,
    /// Whether templating found a vulnerable fused frame.
    pub template_found: bool,
    /// Whether the victim's secret landed on the templated frame in pass 2.
    pub bait_landed: bool,
    /// Whether the victim's secret was corrupted.
    pub victim_corrupted: bool,
    /// Verdict: success = corruption achieved.
    pub verdict: AttackVerdict,
}

const GROUPS: u64 = 24;
const HAMMER_ITERS: u64 = 2_000_000;
/// Fused frames two apart sit in adjacent rows (single-bank 8 KiB rows).
const AGGR_DISTANCE: usize = 2;

fn fail(run_contiguous: bool, template_found: bool, bait_landed: bool) -> ReuseFfsOutcome {
    ReuseFfsOutcome {
        run_contiguous,
        template_found,
        bait_landed,
        victim_corrupted: false,
        verdict: AttackVerdict { success: false },
    }
}

/// The attacker's pair-wise duplicate pages: pair `g` occupies pages
/// `2g` and `2g + 1`.
fn pair_vas(setup: &TwinSetup, g: u64) -> (VirtAddr, VirtAddr) {
    (setup.merge_page(2 * g), setup.merge_page(2 * g + 1))
}

/// Resolves the current backing frame of a VA (attacker-side knowledge).
fn frame_of(sys: &System<Box<dyn FusionPolicy>>, pid: Pid, va: VirtAddr) -> Option<FrameId> {
    sys.machine.translate_quiet(pid, va).map(|pa| pa.frame())
}

/// Runs the attack against a fresh system of the given kind.
pub fn run(kind: EngineKind) -> ReuseFfsOutcome {
    let mut sys = crate::common::attack_system(kind);
    let setup = TwinSetup::new(&mut sys, GROUPS * 2, 0, false);
    let (attacker, victim) = (setup.attacker, setup.victim);
    // --- Pass 1: pair-wise duplicates ----------------------------------
    let labels: Vec<u64> = (0..GROUPS).map(|g| 0x3b0b_0000 + g).collect();
    for (g, &label) in labels.iter().enumerate() {
        let (va1, va2) = pair_vas(&setup, g as u64);
        sys.write_page(attacker, va1, &labeled_page(label));
        sys.write_page(attacker, va2, &labeled_page(label));
    }
    settle(&mut sys, GROUPS * 4);
    // Sort the attacker's pairs by content hash: rank k was assigned the
    // k-th reserved frame.
    let mut order: Vec<u64> = (0..GROUPS).collect();
    order.sort_by_key(|&g| content_hash(&labeled_page(labels[g as usize])));
    let fused: Vec<Option<FrameId>> = order
        .iter()
        .map(|&g| frame_of(&sys, attacker, pair_vas(&setup, g).0))
        .collect();
    let Some(fused): Option<Vec<FrameId>> = fused.into_iter().collect() else {
        return fail(false, false, false);
    };
    let run_contiguous = fused.windows(2).all(|w| w[0].0 == w[1].0 + 1);
    // --- Phase 2: template the fused run (reads only) -------------------
    let mut template: Option<usize> = None; // Rank of the vulnerable frame.
    for rank in AGGR_DISTANCE..fused.len() - AGGR_DISTANCE {
        let a1 = pair_vas(&setup, order[rank - AGGR_DISTANCE]).0;
        let a2 = pair_vas(&setup, order[rank + AGGR_DISTANCE]).0;
        sys.machine.hammer(attacker, a1, a2, HAMMER_ITERS);
        let expected = labeled_page(labels[order[rank] as usize]);
        let Some(f) = frame_of(&sys, attacker, pair_vas(&setup, order[rank]).0) else {
            continue;
        };
        if sys.machine.mem().page(f) != &expected {
            template = Some(rank);
            break;
        }
    }
    let Some(vuln_rank) = template else {
        return fail(run_contiguous, false, false);
    };
    let vuln_frame = fused[vuln_rank];
    // --- Phase 3: release everything (CoW) ------------------------------
    for g in 0..GROUPS {
        let (va1, va2) = pair_vas(&setup, g);
        sys.write(attacker, va1, 0x11u8.wrapping_add(g as u8));
        sys.write(attacker, va2, 0x22u8.wrapping_add(g as u8));
    }
    // --- Phase 4: aim the victim's secret at the vulnerable rank --------
    // The secret content (known to the attacker, e.g. a public key).
    let secret = labeled_page(0x5ec2_0001);
    let h_secret = content_hash(&secret);
    // Choose filler labels so exactly `vuln_rank` of them hash below the
    // secret: the secret's group then has rank `vuln_rank`.
    let mut below = Vec::new();
    let mut above = Vec::new();
    let mut probe_label = 0xf0f0_0000u64;
    while (below.len() < vuln_rank || above.len() < (GROUPS as usize - 1 - vuln_rank))
        && probe_label < 0xf0f4_0000
    {
        let h = content_hash(&labeled_page(probe_label));
        if h < h_secret && below.len() < vuln_rank {
            below.push(probe_label);
        } else if h > h_secret && above.len() < GROUPS as usize - 1 - vuln_rank {
            above.push(probe_label);
        }
        probe_label += 1;
    }
    if below.len() < vuln_rank || above.len() < GROUPS as usize - 1 - vuln_rank {
        return fail(run_contiguous, true, false);
    }
    let mut new_labels: Vec<u64> = below;
    new_labels.extend(above);
    // Rewrite the attacker pages: filler pairs everywhere except group 0,
    // which holds a single copy of the secret (the victim provides the
    // other copy).
    let (sva1, sva2) = pair_vas(&setup, 0);
    sys.write_page(attacker, sva1, &secret);
    sys.write_page(attacker, sva2, &labeled_page(0x0ddb_a11d)); // Odd one out.
    for (g, &label) in new_labels.iter().enumerate() {
        let (va1, va2) = pair_vas(&setup, g as u64 + 1);
        sys.write_page(attacker, va1, &labeled_page(label));
        sys.write_page(attacker, va2, &labeled_page(label));
    }
    sys.write_page(victim, setup.merge_page(0), &secret);
    settle(&mut sys, GROUPS * 4);
    let victim_frame = frame_of(&sys, victim, setup.merge_page(0));
    let bait_landed = victim_frame == Some(vuln_frame);
    // --- Phase 5: hammer the secret's neighbors -------------------------
    // Rank ordering of the new set tells the attacker which of her filler
    // pages are physically adjacent to the secret.
    let mut rank_of: Vec<(u64, VirtAddr)> = vec![(h_secret, sva1)];
    for (g, &label) in new_labels.iter().enumerate() {
        rank_of.push((
            content_hash(&labeled_page(label)),
            pair_vas(&setup, g as u64 + 1).0,
        ));
    }
    rank_of.sort_by_key(|&(h, _)| h);
    let secret_rank = rank_of
        .iter()
        .position(|&(h, _)| h == h_secret)
        .expect("present");
    if secret_rank < AGGR_DISTANCE || secret_rank + AGGR_DISTANCE >= rank_of.len() {
        return fail(run_contiguous, true, bait_landed);
    }
    let a1 = rank_of[secret_rank - AGGR_DISTANCE].1;
    let a2 = rank_of[secret_rank + AGGR_DISTANCE].1;
    sys.machine.hammer(attacker, a1, a2, HAMMER_ITERS);
    // --- Verdict ---------------------------------------------------------
    let got = sys.read_page(victim, setup.merge_page(0));
    let victim_corrupted = got != secret;
    ReuseFfsOutcome {
        run_contiguous,
        template_found: true,
        bait_landed,
        victim_corrupted,
        verdict: AttackVerdict {
            success: victim_corrupted,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_against_wpf() {
        let o = run(EngineKind::Wpf);
        assert!(
            o.run_contiguous,
            "linear allocation must produce a contiguous run: {o:?}"
        );
        assert!(o.template_found, "hammering the run must find a weak frame");
        assert!(
            o.bait_landed,
            "deterministic reuse must place the secret on the template: {o:?}"
        );
        assert!(
            o.verdict.success,
            "the victim's secret must be corrupted: {o:?}"
        );
    }

    #[test]
    fn fails_against_vusion() {
        let o = run(EngineKind::VUsion);
        assert!(
            !o.bait_landed,
            "RA must break reuse-based templating: {o:?}"
        );
        assert!(
            !o.verdict.success,
            "the victim's secret must survive: {o:?}"
        );
    }
}
