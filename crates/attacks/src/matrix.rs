//! The Table 1 reproduction: every attack against every engine.

use vusion_core::EngineKind;

use crate::{cow_timing, ffs_ksm, ffs_wpf, page_color, page_sharing, translation};

/// One cell of the attack matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Attack name (Table 1's first column).
    pub attack: &'static str,
    /// The mechanism the attack abuses.
    pub mechanism: &'static str,
    /// The principle that mitigates it.
    pub mitigation: &'static str,
    /// Engine attacked.
    pub engine: EngineKind,
    /// Whether the attack succeeded.
    pub success: bool,
}

/// Runs the full attack matrix. `engines` is typically
/// `[Ksm, Wpf, VUsion]`; each attack picks its natural baseline semantics.
pub fn attack_matrix(engines: &[EngineKind]) -> Vec<MatrixRow> {
    let mut rows = Vec::new();
    for &engine in engines {
        rows.push(MatrixRow {
            attack: "Copy-on-write",
            mechanism: "Unmerge",
            mitigation: "SB",
            engine,
            success: cow_timing::run(engine, cow_timing::CowTimingParams::default())
                .verdict
                .success,
        });
        rows.push(MatrixRow {
            attack: "Page color (new)",
            mechanism: "Merge",
            mitigation: "SB",
            engine,
            success: page_color::run(engine).verdict.success,
        });
        rows.push(MatrixRow {
            attack: "Page sharing (new)",
            mechanism: "Merge",
            mitigation: "SB",
            engine,
            success: page_sharing::run(engine).verdict.success,
        });
        rows.push(MatrixRow {
            attack: "Translation (new)",
            mechanism: "Merge",
            mitigation: "SB",
            engine,
            success: translation::run(engine).verdict.success,
        });
        rows.push(MatrixRow {
            attack: "Flip Feng Shui",
            mechanism: "Merge",
            mitigation: "RA",
            engine,
            success: ffs_ksm::run(engine).verdict.success,
        });
        rows.push(MatrixRow {
            attack: "Reuse-based Flip Feng Shui (new)",
            mechanism: "Reuse",
            mitigation: "RA",
            engine,
            success: ffs_wpf::run(engine).verdict.success,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline security claim of the paper, in one test: at least one
    /// insecure baseline falls to every attack, and VUsion falls to none.
    /// (Expensive; the per-attack modules carry the fine-grained tests.)
    #[test]
    fn vusion_stops_every_attack_some_baseline_does_not() {
        let rows = attack_matrix(&[EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion]);
        for attack in [
            "Copy-on-write",
            "Page color (new)",
            "Page sharing (new)",
            "Flip Feng Shui",
        ] {
            let baseline_broken = rows
                .iter()
                .any(|r| r.attack == attack && r.engine != EngineKind::VUsion && r.success);
            assert!(baseline_broken, "{attack} must succeed against a baseline");
        }
        for r in rows.iter().filter(|r| r.engine == EngineKind::VUsion) {
            assert!(!r.success, "VUsion must stop {}", r.attack);
        }
    }
}
