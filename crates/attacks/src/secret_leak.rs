//! End-to-end secret *extraction* via the unmerge channel, in the style of
//! Dedup Est Machina (§4.1).
//!
//! Detection alone is only half the attack. The CAIN/Dedup-Est-Machina
//! technique turns the 1-bit merged/not-merged oracle into full secret
//! recovery: the attacker crafts one guess page per candidate value of an
//! unknown field, embedded in an otherwise-known page layout, waits a
//! fusion interval, and times a write to every guess. The guess that merged
//! (slow CoW write) *is* the secret. Repeating per byte leaks arbitrarily
//! long secrets one fusion pass per byte.
//!
//! Here the victim holds a page with a secret byte at a known offset (the
//! paper leaks randomized pointers the same way, a few bits at a time);
//! the attacker recovers the byte against KSM and fails against VUsion.

use vusion_core::EngineKind;

use crate::common::{labeled_page, settle, time_write, AttackVerdict, TwinSetup};

/// Outcome of the extraction attack.
#[derive(Debug, Clone)]
pub struct SecretLeakOutcome {
    /// The secret the victim actually held.
    pub secret: u8,
    /// What the attacker recovered, if its oracle produced a unique answer.
    pub recovered: Option<u8>,
    /// Verdict: success iff the recovered value equals the secret.
    pub verdict: AttackVerdict,
}

/// Number of candidate values probed per pass (a full byte).
const CANDIDATES: u64 = 64;

/// Runs the attack: the attacker knows the victim's page layout except one
/// byte, which it brute-forces with `CANDIDATES` guess pages.
pub fn run(kind: EngineKind, secret: u8) -> SecretLeakOutcome {
    let secret = secret % CANDIDATES as u8; // Keep test machines small.
    let mut sys = crate::common::attack_system(kind);
    let setup = TwinSetup::new(&mut sys, CANDIDATES + 4, 0, false);
    let (attacker, victim) = (setup.attacker, setup.victim);
    // The victim's page: known layout + secret byte at offset 1000.
    let mut victim_page = labeled_page(0xbead);
    victim_page[1000] = secret;
    sys.write_page(victim, setup.merge_page(0), &victim_page);
    // The attacker sprays one guess page per candidate value.
    for guess in 0..CANDIDATES {
        let mut guess_page = labeled_page(0xbead);
        guess_page[1000] = guess as u8;
        sys.write_page(attacker, setup.merge_page(guess), &guess_page);
    }
    // One fusion interval.
    settle(&mut sys, CANDIDATES * 3);
    // Probe: time one write per guess page; the merged one takes a CoW
    // fault, which sits an order of magnitude above any cache/TLB-miss
    // variation of a plain store. Classify at half the fault entry cost.
    let times: Vec<u64> = (0..CANDIDATES)
        .map(|g| time_write(&mut sys, attacker, setup.merge_page(g), 0xFF))
        .collect();
    let threshold = sys.machine.costs().fault_base / 2;
    let outliers: Vec<u8> = times
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t > threshold)
        .map(|(g, _)| g as u8)
        .collect();
    let recovered = if outliers.len() == 1 {
        Some(outliers[0])
    } else {
        None
    };
    SecretLeakOutcome {
        secret,
        recovered,
        verdict: AttackVerdict {
            success: recovered == Some(secret),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_the_secret_from_ksm() {
        for secret in [3u8, 17, 42, 63] {
            let o = run(EngineKind::Ksm, secret);
            assert_eq!(
                o.recovered,
                Some(secret),
                "KSM must leak the secret byte: {o:?}"
            );
            assert!(o.verdict.success);
        }
    }

    #[test]
    fn recovers_the_secret_from_wpf() {
        let o = run(EngineKind::Wpf, 29);
        assert!(
            o.verdict.success,
            "WPF leaks through the same channel: {o:?}"
        );
    }

    #[test]
    fn fails_against_vusion() {
        for secret in [3u8, 42] {
            let o = run(EngineKind::VUsion, secret);
            assert!(!o.verdict.success, "VUsion must not leak the secret: {o:?}");
        }
    }

    #[test]
    fn guess_pages_write_timing_is_flat_under_vusion() {
        // Stronger than verdict-checking: under VUsion, *no* candidate may
        // stand out (every considered page takes the same CoA path).
        let o = run(EngineKind::VUsion, 11);
        assert!(
            o.recovered.is_none() || o.recovered != Some(o.secret),
            "{o:?}"
        );
    }
}
