//! The new page-color attack of §5.1: detect a merge by observing that the
//! target page's *physical address* changed across a fusion pass, via
//! PRIME+PROBE on the last-level cache.
//!
//! The attacker builds an eviction set per page color from its own
//! (non-mergeable) memory, measures the color of a target page, waits for
//! a fusion pass, and measures again. A color change reveals that the page
//! was re-backed — i.e. merged (`P_success = (C-1)/C`, ≈ 0.99 at 128
//! colors). The attacker only ever *reads* the target.
//!
//! VUsion defeats this with SB: every considered page is re-backed by a
//! random frame whether it merged or not (fake merging + per-scan
//! re-randomization), so a color change carries no information.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, Pid, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};

use crate::common::{labeled_page, settle, AttackVerdict, TwinSetup};

/// Outcome of the page-color attack.
#[derive(Debug, Clone)]
pub struct PageColorOutcome {
    /// Per duplicated target: color before/after the pass.
    pub dup_colors: Vec<(usize, usize)>,
    /// Per unique control page: color before/after.
    pub control_colors: Vec<(usize, usize)>,
    /// Verdict: the attacker wins if duplicates changed color while
    /// controls did not (a distinguishable merge signal).
    pub verdict: AttackVerdict,
}

/// Eviction sets for every color, built from the attacker's own pages.
struct EvictionSets {
    /// Per color: one address per pool page of that color (≥ `ways`).
    sets: Vec<Vec<VirtAddr>>,
}

impl EvictionSets {
    /// Groups the attacker's utility pages by the color of their backing
    /// frames. Real attackers build these sets with timing alone in "a few
    /// minutes" (§5.1); we shortcut the construction with the attacker's
    /// knowledge of its own memory, which is the same end state.
    fn build(sys: &System<Box<dyn FusionPolicy>>, pid: Pid, base: VirtAddr, pages: u64) -> Self {
        let colors = sys.machine.llc().config().colors();
        let ways = sys.machine.llc().config().ways;
        let mut sets = vec![Vec::new(); colors];
        for i in 0..pages {
            let va = VirtAddr(base.0 + i * PAGE_SIZE);
            let Some(pa) = sys.machine.translate_quiet(pid, va) else {
                continue;
            };
            let color = sys.machine.llc().color_of(pa.frame());
            // Exactly `ways` lines: a larger set self-evicts during the
            // probe and destroys the signal.
            if sets[color].len() < ways {
                sets[color].push(va);
            }
        }
        Self { sets }
    }

    fn complete(&self, ways: usize) -> bool {
        self.sets.iter().all(|s| s.len() >= ways)
    }
}

/// PRIME+PROBE: returns the color whose eviction set shows the most probe
/// misses after accessing the target.
fn probe_color(
    sys: &mut System<Box<dyn FusionPolicy>>,
    pid: Pid,
    target: VirtAddr,
    ev: &EvictionSets,
) -> usize {
    let miss_threshold = sys.machine.costs().llc_hit * 3;
    let mut best = (0usize, 0u64);
    for (color, set) in ev.sets.iter().enumerate() {
        // PRIME: fill the set.
        for &va in set {
            sys.read(pid, va);
        }
        // Victim step: touch the target (a read — never a write).
        sys.read(pid, target);
        // PROBE: time the eviction set again; a slow member means the
        // target displaced us, i.e. the target has this color.
        let mut misses = 0u64;
        for &va in set {
            let t0 = sys.machine.now_ns();
            sys.read(pid, va);
            if sys.machine.now_ns() - t0 > miss_threshold {
                misses += 1;
            }
        }
        if misses > best.1 {
            best = (color, misses);
        }
    }
    best.0
}

/// Runs the attack against a fresh system of the given kind.
pub fn run(kind: EngineKind) -> PageColorOutcome {
    const DUPS: u64 = 4;
    const CONTROLS: u64 = 3;
    let mut sys = crate::common::attack_system(kind);
    let colors = sys.machine.llc().config().colors();
    let ways = sys.machine.llc().config().ways;
    // Utility pool large enough to find `ways` pages of every color.
    let util_pages = (colors * (ways + 4)) as u64;
    // Victim first: on a KSM promotion the victim's frame becomes the
    // stable page, so the *attacker's* mapping is the one re-pointed.
    let setup = TwinSetup::new(&mut sys, DUPS + CONTROLS, util_pages, true);
    let (attacker, victim) = (setup.attacker, setup.victim);
    // Populate the utility pool (unique contents, kept out of fusion).
    for i in 0..util_pages {
        sys.write(attacker, setup.util_page(i), (i % 251) as u8 + 1);
    }
    let ev = EvictionSets::build(&sys, attacker, setup.util_base, util_pages);
    assert!(
        ev.complete(ways),
        "utility pool too small for eviction sets"
    );
    // Targets: DUPS pages duplicated in the victim, CONTROLS unique pages.
    for i in 0..DUPS {
        sys.write_page(victim, setup.merge_page(i), &labeled_page(0x5ec1 + i));
        sys.write_page(attacker, setup.merge_page(i), &labeled_page(0x5ec1 + i));
    }
    for i in 0..CONTROLS {
        sys.write_page(
            attacker,
            setup.merge_page(DUPS + i),
            &labeled_page(0xaaaa_0000 + i),
        );
    }
    let before: Vec<usize> = (0..DUPS + CONTROLS)
        .map(|i| probe_color(&mut sys, attacker, setup.merge_page(i), &ev))
        .collect();
    // A fusion pass occurs.
    settle(&mut sys, (DUPS + CONTROLS) * 4);
    let after: Vec<usize> = (0..DUPS + CONTROLS)
        .map(|i| probe_color(&mut sys, attacker, setup.merge_page(i), &ev))
        .collect();
    let dup_colors: Vec<(usize, usize)> =
        (0..DUPS as usize).map(|i| (before[i], after[i])).collect();
    let control_colors: Vec<(usize, usize)> = (DUPS as usize..(DUPS + CONTROLS) as usize)
        .map(|i| (before[i], after[i]))
        .collect();
    let dup_changed = dup_colors.iter().filter(|(b, a)| b != a).count();
    let control_changed = control_colors.iter().filter(|(b, a)| b != a).count();
    // The attacker reads a merge signal iff duplicates systematically
    // change color while controls do not.
    let success = dup_changed * 2 > dup_colors.len() && control_changed == 0;
    PageColorOutcome {
        dup_colors,
        control_colors,
        verdict: AttackVerdict { success },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_probe_recovers_known_color() {
        let mut sys = crate::common::attack_system(EngineKind::NoFusion);
        let colors = sys.machine.llc().config().colors();
        let ways = sys.machine.llc().config().ways;
        let util_pages = (colors * (ways + 4)) as u64;
        let setup = TwinSetup::new(&mut sys, 4, util_pages, false);
        for i in 0..util_pages {
            sys.write(setup.attacker, setup.util_page(i), 1);
        }
        let ev = EvictionSets::build(&sys, setup.attacker, setup.util_base, util_pages);
        assert!(ev.complete(ways));
        let target = setup.merge_page(0);
        sys.write(setup.attacker, target, 9);
        let truth = {
            let pa = sys
                .machine
                .translate_quiet(setup.attacker, target)
                .expect("mapped");
            sys.machine.llc().color_of(pa.frame())
        };
        let measured = probe_color(&mut sys, setup.attacker, target, &ev);
        assert_eq!(measured, truth, "PRIME+PROBE must recover the true color");
    }

    #[test]
    fn succeeds_against_ksm() {
        let o = run(EngineKind::Ksm);
        assert!(
            o.verdict.success,
            "KSM leaks merges through color changes: {o:?}"
        );
    }

    #[test]
    fn succeeds_against_wpf() {
        let o = run(EngineKind::Wpf);
        assert!(
            o.verdict.success,
            "WPF allocates a new frame on merge — color changes: {o:?}"
        );
    }

    #[test]
    fn fails_against_vusion() {
        let o = run(EngineKind::VUsion);
        assert!(
            !o.verdict.success,
            "VUsion re-backs merged AND unmerged candidates alike: {o:?}"
        );
    }
}
