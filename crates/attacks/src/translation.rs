//! The new translation attack of §5.1 (AnC-style).
//!
//! KSM breaks a transparent huge page *when it merges a 4 KiB page inside
//! it*. The other 511 pages of the THP then need an extra page-table level
//! (and lose their 2 MiB TLB entry), which the attacker can time — without
//! ever touching the merged page itself: a slow access to an *adjacent*
//! page reveals that the target page was merged.
//!
//! The attacker keeps two 2 MiB THP regions: the *target* THP contains one
//! page duplicating the victim's secret guess; the *control* THP holds only
//! unique data. After a fusion interval it sweeps its TLB and times one
//! access into each region. Under KSM only the target THP was broken.
//! Under VUsion every idle THP is broken (consideration alone breaks it, and
//! being considered only reveals idleness — §8.1), so the two regions time
//! identically.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, MachineConfig, Pid, System};
use vusion_mem::{VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};

use crate::common::{labeled_page, settle, AttackVerdict};

/// Outcome of the translation attack.
#[derive(Debug, Clone)]
pub struct TranslationOutcome {
    /// Mean timed access (ns) to a page adjacent to the duplicate.
    pub target_mean: f64,
    /// Mean timed access (ns) into the control THP.
    pub control_mean: f64,
    /// Whether the target THP is actually broken (ground truth, reported
    /// for the experiment logs; the verdict uses timing only).
    pub target_broken: bool,
    /// Whether the control THP is broken.
    pub control_broken: bool,
    /// Verdict: success iff the timing separates the regions.
    pub verdict: AttackVerdict,
}

const TARGET_BASE: u64 = 4 * HUGE_PAGE_SIZE;
const CONTROL_BASE: u64 = 8 * HUGE_PAGE_SIZE;
const SWEEP_BASE: u64 = 0x8000_0000;
const SWEEP_PAGES: u64 = 1700; // Exceeds the 1536-entry 4 KiB TLB.

/// Faults a THP region in and fills it with unique content.
fn setup_thp(sys: &mut System<Box<dyn FusionPolicy>>, pid: Pid, base: u64, salt: u64) {
    // One faulting read maps the whole 2 MiB range (demand THP).
    sys.read(pid, VirtAddr(base));
    assert!(
        sys.machine.leaf(pid, VirtAddr(base)).expect("mapped").huge,
        "setup requires a THP-backed region"
    );
    for i in 0..512u64 {
        sys.write_page(
            pid,
            VirtAddr(base + i * PAGE_SIZE),
            &labeled_page(salt ^ (i << 32)),
        );
    }
}

/// Evicts the attacker's 4 KiB TLB entries *and* thrashes the LLC by
/// sweeping a large buffer (several lines per page), so a subsequent page
/// walk pays real memory latency per level — the signal AnC measures.
fn sweep_tlb_and_llc(sys: &mut System<Box<dyn FusionPolicy>>, pid: Pid) {
    for i in 0..SWEEP_PAGES {
        // Vary the line offsets per page: page-aligned sweeps alias into a
        // handful of cache sets and would leave the victim walk entries
        // cached.
        for k in 0..4u64 {
            // Hash the (page, k) pair into a line offset so the sweep's
            // physical addresses cover every cache set uniformly.
            let line = (i
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(k.wrapping_mul(0x85eb_ca6b))
                >> 7)
                % 64;
            sys.read(pid, VirtAddr(SWEEP_BASE + i * PAGE_SIZE + line * 64));
        }
    }
}

/// Runs the attack against a fresh system of the given kind (THP machine).
pub fn run(kind: EngineKind) -> TranslationOutcome {
    const TRIALS: usize = 10;
    let mut sys = crate::common::attack_system_on(kind, MachineConfig::test_small().with_thp());
    // Victim first, so its 4 KiB page hosts a KSM promotion and the
    // attacker's side is the one that gets merged (and split).
    let victim = sys.machine.spawn("victim").expect("spawn");
    let attacker = sys.machine.spawn("attacker").expect("spawn");
    sys.machine
        .mmap(victim, Vma::anon(VirtAddr(0x10000), 8, Protection::rw()));
    sys.machine.madvise_mergeable(victim, VirtAddr(0x10000), 8);
    // Two 2 MiB-aligned, THP-eligible mergeable regions.
    sys.machine.mmap(
        attacker,
        Vma::anon(VirtAddr(TARGET_BASE), 512, Protection::rw()),
    );
    sys.machine.mmap(
        attacker,
        Vma::anon(VirtAddr(CONTROL_BASE), 512, Protection::rw()),
    );
    sys.machine
        .madvise_mergeable(attacker, VirtAddr(TARGET_BASE), 512);
    sys.machine
        .madvise_mergeable(attacker, VirtAddr(CONTROL_BASE), 512);
    // Plus the (non-mergeable) TLB sweep buffer; MADV_NOHUGEPAGE so its
    // accesses pressure the 4 KiB TLB, not the 2 MiB one.
    sys.machine.mmap(
        attacker,
        Vma::anon(VirtAddr(SWEEP_BASE), SWEEP_PAGES, Protection::rw()).no_thp(),
    );
    for i in 0..SWEEP_PAGES {
        sys.write(attacker, VirtAddr(SWEEP_BASE + i * PAGE_SIZE), 1);
    }
    setup_thp(&mut sys, attacker, TARGET_BASE, 0xaaaa);
    setup_thp(&mut sys, attacker, CONTROL_BASE, 0xbbbb);
    // The duplicate guess sits at sub-page 100 of the target THP; the
    // victim holds the same content.
    let dup_va = VirtAddr(TARGET_BASE + 100 * PAGE_SIZE);
    sys.write_page(attacker, dup_va, &labeled_page(0x6e6e));
    sys.write_page(victim, VirtAddr(0x10000), &labeled_page(0x6e6e));
    // Fusion interval (1032 mergeable pages).
    settle(&mut sys, 1100);
    // Probe pages *adjacent* to the duplicate — never the duplicate itself.
    let target_probe = VirtAddr(TARGET_BASE + 101 * PAGE_SIZE);
    let control_probe = VirtAddr(CONTROL_BASE + 101 * PAGE_SIZE);
    let mut target_times = Vec::with_capacity(TRIALS);
    let mut control_times = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        sweep_tlb_and_llc(&mut sys, attacker);
        let t0 = sys.machine.now_ns();
        sys.read(attacker, target_probe);
        target_times.push((sys.machine.now_ns() - t0) as f64);
        sweep_tlb_and_llc(&mut sys, attacker);
        let t1 = sys.machine.now_ns();
        sys.read(attacker, control_probe);
        control_times.push((sys.machine.now_ns() - t1) as f64);
    }
    // Discard the first trial: it absorbs one-off copy-on-access faults,
    // which hit both regions identically under SB engines anyway.
    let mean = |v: &[f64]| v[1..].iter().sum::<f64>() / (v.len() - 1) as f64;
    let target_mean = mean(&target_times);
    let control_mean = mean(&control_times);
    let target_broken = !sys
        .machine
        .leaf(attacker, VirtAddr(TARGET_BASE))
        .map(|l| l.huge)
        .unwrap_or(false);
    let control_broken = !sys
        .machine
        .leaf(attacker, VirtAddr(CONTROL_BASE))
        .map(|l| l.huge)
        .unwrap_or(false);
    // One extra page-walk level plus the lost 2 MiB TLB entry is worth
    // hundreds of ns; call it detected beyond 100 ns.
    let success = target_mean - control_mean > 100.0;
    TranslationOutcome {
        target_mean,
        control_mean,
        target_broken,
        control_broken,
        verdict: AttackVerdict { success },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_against_ksm() {
        let o = run(EngineKind::Ksm);
        assert!(o.target_broken, "KSM must split the THP it merged into");
        assert!(!o.control_broken, "KSM must leave the control THP alone");
        assert!(o.verdict.success, "timing must reveal the split: {o:?}");
    }

    #[test]
    fn fails_against_vusion() {
        let o = run(EngineKind::VUsion);
        assert!(
            o.target_broken && o.control_broken,
            "VUsion breaks all idle THPs alike"
        );
        assert!(!o.verdict.success, "no differential signal: {o:?}");
    }

    #[test]
    fn fails_against_vusion_thp() {
        let o = run(EngineKind::VUsionThp);
        assert_eq!(
            o.target_broken, o.control_broken,
            "VUsion-THP must treat both idle regions identically"
        );
        assert!(!o.verdict.success, "no differential signal: {o:?}");
    }
}
