//! The classic copy-on-write timing side channel (§4.1, Figures 5/6).
//!
//! The attacker crafts guesses for a victim page's contents, waits a fusion
//! interval, then *times a write* (or, against S⊕F systems, a read) to each
//! guess. Under KSM a correct guess was merged, so the write takes a CoW
//! fault — milliseconds apart from a plain store in distribution. Under
//! VUsion every considered page takes the same copy-on-access path, merged
//! or not, and the two distributions are statistically indistinguishable
//! (the paper's KS test, p = 0.36).
//!
//! Probe times are read off the [`SideChannelSurface`] rather than
//! re-measured inline: each probe takes the delta of the recorder's exact
//! fault-nanosecond total around the access ([`SideChannelSurface::fault_ns_total`]
//! — full resolution, so the Figure 5/6 fine structure survives; bucket
//! floors would quantize every copy-on-access probe to one value). A probe
//! that takes no fault at all (a plain load or store) costs the flat
//! [`FAST_PROBE_NS`]. This is exactly the information a real attacker
//! extracts — which probes faulted, and how expensively — and it keeps the
//! one latency-sampling site in the tree inside the recorder.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, Pid, SideChannelSurface, System};
use vusion_stats::{ks_two_sample, KsResult};

use crate::common::{labeled_page, settle, AttackVerdict, TwinSetup};

/// Cost assigned to a probe that raised no page fault: the fault-latency
/// surface saw nothing, so the attacker observed only a fast in-TLB
/// access. Nonzero so fault-free distributions have a well-defined
/// median ratio against faulting ones.
pub const FAST_PROBE_NS: u64 = 100;

/// Attack parameters.
#[derive(Debug, Clone, Copy)]
pub struct CowTimingParams {
    /// Number of correct guesses (pages duplicated in the victim).
    pub dup_probes: u64,
    /// Number of wrong guesses (pages unique to the attacker).
    pub unique_probes: u64,
    /// Probe with writes (the classic attack) or reads (defeats nothing on
    /// KSM, but is the relevant probe against S⊕F systems).
    pub probe_with_writes: bool,
}

impl Default for CowTimingParams {
    fn default() -> Self {
        Self {
            dup_probes: 100,
            unique_probes: 100,
            probe_with_writes: true,
        }
    }
}

/// What the attack measured.
#[derive(Debug, Clone)]
pub struct CowTimingOutcome {
    /// Probe costs (ns, from the recorded fault-latency surface) on pages
    /// that had a duplicate in the victim.
    pub dup_times: Vec<f64>,
    /// Probe costs (ns) on pages unique to the attacker.
    pub unique_times: Vec<f64>,
    /// Two-sample KS test between the two.
    pub ks: KsResult,
    /// Verdict: the attacker learns which guesses were right iff the
    /// distributions separate.
    pub verdict: AttackVerdict,
}

/// Runs the attack against a freshly built system of the given kind.
pub fn run(kind: EngineKind, params: CowTimingParams) -> CowTimingOutcome {
    let mut sys = crate::common::attack_system(kind);
    let total = params.dup_probes + params.unique_probes;
    let setup = TwinSetup::new(&mut sys, total.max(params.dup_probes), 0, false);
    run_on(&mut sys, &setup, params)
}

/// Runs the attack on an existing system/setup (used by the figure benches
/// to extract the raw histograms).
pub fn run_on(
    sys: &mut System<Box<dyn FusionPolicy>>,
    setup: &TwinSetup,
    params: CowTimingParams,
) -> CowTimingOutcome {
    let attacker = setup.attacker;
    let victim = setup.victim;
    // Probe costs come from the surface recorder's fault histogram.
    sys.machine.enable_surface();
    // The victim populates its secrets; the attacker writes dup_probes
    // correct guesses and unique_probes wrong ones.
    for i in 0..params.dup_probes {
        sys.write_page(victim, setup.merge_page(i), &labeled_page(1000 + i));
        sys.write_page(attacker, setup.merge_page(i), &labeled_page(1000 + i));
    }
    for i in 0..params.unique_probes {
        let va = setup.merge_page(params.dup_probes + i);
        sys.write_page(attacker, va, &labeled_page(0xdead_0000 + i));
    }
    // A fusion interval passes.
    settle(sys, (params.dup_probes * 2 + params.unique_probes) * 2);
    // Probe: the cost of one access is the exact fault-nanosecond delta it
    // leaves on the recorded surface.
    let probe = |sys: &mut System<Box<dyn FusionPolicy>>, pid: Pid, va| -> f64 {
        let before = sys.machine.obs().surface().fault_ns_total();
        if params.probe_with_writes {
            sys.write(pid, va, 0x41);
        } else {
            sys.read(pid, va);
        }
        surface_delta_ns(sys.machine.obs().surface(), before) as f64
    };
    // Interleave the two probe classes so machine-state drift (cache
    // warmth, queue depths) cannot masquerade as a signal.
    let mut dup_times = Vec::with_capacity(params.dup_probes as usize);
    let mut unique_times = Vec::with_capacity(params.unique_probes as usize);
    let n = params.dup_probes.max(params.unique_probes);
    for i in 0..n {
        if i < params.dup_probes {
            dup_times.push(probe(sys, attacker, setup.merge_page(i)));
        }
        if i < params.unique_probes {
            unique_times.push(probe(
                sys,
                attacker,
                setup.merge_page(params.dup_probes + i),
            ));
        }
    }
    let ks = ks_two_sample(&dup_times, &unique_times);
    CowTimingOutcome {
        verdict: AttackVerdict {
            success: !ks.same_distribution(0.05),
        },
        dup_times,
        unique_times,
        ks,
    }
}

/// The exact fault-latency delta the probe left on the surface; a
/// fault-free delta costs the flat [`FAST_PROBE_NS`].
fn surface_delta_ns(surface: &SideChannelSurface, before: u64) -> u64 {
    let ns = surface.fault_ns_total() - before;
    if ns == 0 {
        FAST_PROBE_NS
    } else {
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_against_ksm() {
        let o = run(EngineKind::Ksm, CowTimingParams::default());
        assert!(
            o.verdict.success,
            "KSM must leak via CoW timing (p = {})",
            o.ks.p_value
        );
        // And the separation is massive: the medians are far apart.
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v[v.len() / 2]
        };
        let mut d = o.dup_times.clone();
        let mut u = o.unique_times.clone();
        assert!(
            med(&mut d) > 3.0 * med(&mut u),
            "CoW faults dwarf plain writes"
        );
    }

    #[test]
    fn succeeds_against_wpf() {
        let o = run(EngineKind::Wpf, CowTimingParams::default());
        assert!(
            o.verdict.success,
            "WPF must leak via CoW timing (p = {})",
            o.ks.p_value
        );
    }

    #[test]
    fn fails_against_vusion_with_writes() {
        let o = run(EngineKind::VUsion, CowTimingParams::default());
        assert!(
            !o.verdict.success,
            "VUsion write timing must be indistinguishable (p = {}, D = {})",
            o.ks.p_value, o.ks.statistic
        );
    }

    #[test]
    fn fails_against_vusion_with_reads() {
        let o = run(
            EngineKind::VUsion,
            CowTimingParams {
                probe_with_writes: false,
                ..Default::default()
            },
        );
        assert!(
            !o.verdict.success,
            "VUsion read timing must be indistinguishable (p = {})",
            o.ks.p_value
        );
    }

    #[test]
    fn read_probe_learns_nothing_on_plain_ksm() {
        // Sanity: on classic KSM, *reads* of merged pages are plain reads —
        // the unmerge channel needs writes. (Merge-based read channels are
        // the separate §5.1 attacks.)
        let o = run(
            EngineKind::Ksm,
            CowTimingParams {
                probe_with_writes: false,
                dup_probes: 60,
                unique_probes: 60,
            },
        );
        // Reads may differ slightly through cache effects but must not show
        // the fault-sized separation; compare medians.
        let med = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v[v.len() / 2]
        };
        assert!(med(o.dup_times.clone()) < 3.0 * med(o.unique_times.clone()));
    }
}
