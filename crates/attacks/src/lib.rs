//! The six attacks of the paper's Table 1, implemented end-to-end against
//! the simulated machine.
//!
//! | Attack | Issue | Abused mechanism | Mitigation |
//! |---|---|---|---|
//! | [`cow_timing`] | slow write (§4.1) | unmerge | SB |
//! | [`page_color`] (new) | physical address changes (§5.1) | merge | SB |
//! | [`page_sharing`] (new) | sharing changes (§5.1) | merge | SB |
//! | [`translation`] (new) | translation changes (§5.1) | merge | SB |
//! | [`ffs_ksm`] | predictable merge (§4.2) | merge | RA |
//! | [`ffs_wpf`] (new) | predictable reuse (§5.2) | reuse | RA |
//!
//! Every attack runs the real machinery: it crafts page contents, waits for
//! fusion passes, and *measures the simulated clock* (or memory contents,
//! for the Rowhammer attacks) exactly as the real attacker would measure
//! `rdtsc` or scan for flipped bits. Attacks succeed against the insecure
//! baselines (KSM/WPF) and fail against VUsion; the [`matrix`] module
//! packages that as the Table 1 reproduction.

pub mod ablation;
pub mod common;
pub mod cow_timing;
pub mod ffs_ksm;
pub mod ffs_wpf;
pub mod matrix;
pub mod page_color;
pub mod page_sharing;
pub mod secret_leak;
pub mod translation;

pub use ablation::Ablation;
pub use common::{AttackVerdict, TwinSetup};
pub use matrix::{attack_matrix, MatrixRow};
