//! Shared attack scaffolding: attacker/victim setup and timing helpers.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, MachineConfig, Pid, System};
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};

/// What an attack concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackVerdict {
    /// Whether the attacker extracted the information / corrupted the
    /// target it was after.
    pub success: bool,
}

/// A standard two-party setup: an attacker VM and a victim VM, each with a
/// mergeable anonymous region, plus an attacker-side utility region that is
/// *never* registered for fusion (eviction sets, TLB-sweep buffers).
pub struct TwinSetup {
    /// The attacker's pid (spawned first — scanned first by KSM unless the
    /// attack wants otherwise).
    pub attacker: Pid,
    /// The victim's pid.
    pub victim: Pid,
    /// Base of each party's mergeable region.
    pub merge_base: VirtAddr,
    /// Pages in the mergeable region.
    pub merge_pages: u64,
    /// Base of the attacker's non-mergeable utility region.
    pub util_base: VirtAddr,
    /// Pages in the utility region.
    pub util_pages: u64,
}

impl TwinSetup {
    /// Creates the two processes and regions on a system built for `kind`.
    ///
    /// `victim_first` controls spawn order (KSM scans lower pids first, so
    /// the first-spawned party's frame becomes the stable page on a
    /// promotion — Flip Feng Shui wants the attacker first, the
    /// page-color attack wants the victim first).
    pub fn new(
        sys: &mut System<Box<dyn FusionPolicy>>,
        merge_pages: u64,
        util_pages: u64,
        victim_first: bool,
    ) -> Self {
        let (attacker, victim) = if victim_first {
            let v = sys.machine.spawn("victim").expect("spawn");
            let a = sys.machine.spawn("attacker").expect("spawn");
            (a, v)
        } else {
            let a = sys.machine.spawn("attacker").expect("spawn");
            let v = sys.machine.spawn("victim").expect("spawn");
            (a, v)
        };
        let merge_base = VirtAddr(0x1000_0000);
        let util_base = VirtAddr(0x8000_0000);
        for pid in [attacker, victim] {
            sys.machine
                .mmap(pid, Vma::anon(merge_base, merge_pages, Protection::rw()));
            sys.machine.madvise_mergeable(pid, merge_base, merge_pages);
        }
        if util_pages > 0 {
            sys.machine
                .mmap(attacker, Vma::anon(util_base, util_pages, Protection::rw()));
        }
        Self {
            attacker,
            victim,
            merge_base,
            merge_pages,
            util_base,
            util_pages,
        }
    }

    /// The `i`-th page of a party's mergeable region.
    pub fn merge_page(&self, i: u64) -> VirtAddr {
        assert!(i < self.merge_pages, "merge page index out of range");
        VirtAddr(self.merge_base.0 + i * PAGE_SIZE)
    }

    /// The `i`-th page of the attacker's utility region.
    pub fn util_page(&self, i: u64) -> VirtAddr {
        assert!(i < self.util_pages, "util page index out of range");
        VirtAddr(self.util_base.0 + i * PAGE_SIZE)
    }
}

/// Builds an attack system for an engine on the standard attack machine.
pub fn attack_system(kind: EngineKind) -> System<Box<dyn FusionPolicy>> {
    attack_system_on(kind, MachineConfig::test_small())
}

/// Builds an attack system on a custom machine config.
pub fn attack_system_on(kind: EngineKind, base: MachineConfig) -> System<Box<dyn FusionPolicy>> {
    kind.build_system(base)
}

/// A recognizable page content derived from a label: what the attacker
/// crafts, and what the victim's "secret" pages hold.
pub fn labeled_page(label: u64) -> [u8; PAGE_SIZE as usize] {
    let mut p = [0u8; PAGE_SIZE as usize];
    let mut state = label.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for chunk in p.chunks_mut(8) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        for (i, b) in chunk.iter_mut().enumerate() {
            *b = (v >> (8 * i)) as u8;
        }
    }
    p
}

/// Runs enough scanner wakeups for fusion to settle over `total_pages`
/// candidate pages (several full rounds, covering KSM's checksum
/// stabilization and VUsion's idle detection).
pub fn settle(sys: &mut System<Box<dyn FusionPolicy>>, total_pages: u64) {
    let per_scan = 100u64; // Engines use N=100 (WPF does full passes anyway).
    let wakeups = (total_pages * 4).div_ceil(per_scan).max(4) as usize;
    sys.force_scans(wakeups);
}

/// Times one read in simulated nanoseconds.
pub fn time_read(sys: &mut System<Box<dyn FusionPolicy>>, pid: Pid, va: VirtAddr) -> u64 {
    let t0 = sys.machine.now_ns();
    sys.read(pid, va);
    sys.machine.now_ns() - t0
}

/// Times one write in simulated nanoseconds.
pub fn time_write(
    sys: &mut System<Box<dyn FusionPolicy>>,
    pid: Pid,
    va: VirtAddr,
    value: u8,
) -> u64 {
    let t0 = sys.machine.now_ns();
    sys.write(pid, va, value);
    sys.machine.now_ns() - t0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_pages_are_distinct_and_stable() {
        assert_eq!(labeled_page(1), labeled_page(1));
        assert_ne!(labeled_page(1), labeled_page(2));
    }

    #[test]
    fn twin_setup_layout() {
        let mut sys = attack_system(EngineKind::Ksm);
        let t = TwinSetup::new(&mut sys, 16, 8, false);
        assert_eq!(t.attacker, Pid(0), "attacker spawned first");
        assert_eq!(t.merge_page(1).0, t.merge_base.0 + PAGE_SIZE);
        assert_eq!(t.util_page(0), t.util_base);
        // Mergeable regions registered, utility region not.
        assert_eq!(
            sys.machine
                .process(t.attacker)
                .space
                .mergeable_vmas()
                .count(),
            1
        );
        assert_eq!(
            sys.machine.process(t.victim).space.mergeable_vmas().count(),
            1
        );
    }

    #[test]
    fn twin_setup_victim_first_order() {
        let mut sys = attack_system(EngineKind::Ksm);
        let t = TwinSetup::new(&mut sys, 4, 0, true);
        assert_eq!(t.victim, Pid(0));
        assert_eq!(t.attacker, Pid(1));
    }

    #[test]
    fn timing_helpers_measure_clock() {
        let mut sys = attack_system(EngineKind::NoFusion);
        let t = TwinSetup::new(&mut sys, 4, 0, false);
        let cold = time_write(&mut sys, t.attacker, t.merge_page(0), 1);
        let warm = time_write(&mut sys, t.attacker, t.merge_page(0), 2);
        assert!(cold > warm, "first (faulting) write must be slower");
    }
}
