//! The new page-sharing attack of §5.1: a 1-bit FLUSH+RELOAD.
//!
//! If the attacker's page was merged with the victim's, both PTEs point at
//! the *same physical line*. The attacker FLUSHes its copy, lets the victim
//! run (the victim touches its own secret page), then RELOADs and times: a
//! fast reload means the victim's access refilled the shared line — the
//! pages are fused. Only reads are involved.
//!
//! Under VUsion the attacker's first read copy-on-accesses the page to a
//! private random frame (and `clflush` on a trapped PTE faults rather than
//! flushing), so reload timing is independent of the victim.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, System};
use vusion_mem::VirtAddr;

use crate::common::{labeled_page, settle, AttackVerdict, TwinSetup};

/// Outcome of the FLUSH+RELOAD sharing probe.
#[derive(Debug, Clone)]
pub struct PageSharingOutcome {
    /// Reload times (ns) for the duplicated page across trials.
    pub dup_reloads: Vec<u64>,
    /// Reload times (ns) for the unique control page.
    pub control_reloads: Vec<u64>,
    /// Verdict: success iff the duplicate reloads fast (shared) while the
    /// control reloads slow.
    pub verdict: AttackVerdict,
}

/// One FLUSH + victim-access + RELOAD round; returns the reload time.
fn flush_reload_round(
    sys: &mut System<Box<dyn FusionPolicy>>,
    setup: &TwinSetup,
    attacker_va: VirtAddr,
    victim_va: VirtAddr,
) -> u64 {
    // FLUSH the attacker's view of the line (through the journaled
    // wrapper, so a replayed run re-evicts the same line).
    sys.clflush(setup.attacker, attacker_va);
    // The victim does its thing (reads its own copy of the secret).
    sys.read(setup.victim, victim_va);
    // RELOAD.
    let t0 = sys.machine.now_ns();
    sys.read(setup.attacker, attacker_va);
    sys.machine.now_ns() - t0
}

/// Runs the attack against a fresh system of the given kind.
pub fn run(kind: EngineKind) -> PageSharingOutcome {
    const TRIALS: usize = 12;
    let mut sys = crate::common::attack_system(kind);
    let setup = TwinSetup::new(&mut sys, 8, 0, false);
    let (attacker, victim) = (setup.attacker, setup.victim);
    // Page 0: the attacker's guess of the victim's secret (correct).
    // Page 1: a unique control page. The victim also keeps a decoy page it
    // touches in control rounds so both rounds exercise victim activity.
    let dup = setup.merge_page(0);
    let control = setup.merge_page(1);
    let victim_secret = setup.merge_page(0);
    let victim_decoy = setup.merge_page(2);
    sys.write_page(victim, victim_secret, &labeled_page(0x7e57));
    sys.write_page(victim, victim_decoy, &labeled_page(0xdec0));
    sys.write_page(attacker, dup, &labeled_page(0x7e57));
    sys.write_page(attacker, control, &labeled_page(0xc0ff));
    settle(&mut sys, 32);
    let mut dup_reloads = Vec::with_capacity(TRIALS);
    let mut control_reloads = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        dup_reloads.push(flush_reload_round(&mut sys, &setup, dup, victim_secret));
        control_reloads.push(flush_reload_round(&mut sys, &setup, control, victim_decoy));
    }
    // Classify: a reload is "fast" when it is an LLC hit, i.e. well under
    // DRAM latency. Use the midpoint between hit and row-miss costs.
    let threshold = (sys.machine.costs().llc_hit + sys.machine.costs().dram_row_hit) / 2
        + sys.machine.costs().cpu_op;
    let dup_fast = dup_reloads.iter().filter(|&&t| t <= threshold).count();
    let control_fast = control_reloads.iter().filter(|&&t| t <= threshold).count();
    // The attacker reads the sharing bit iff the duplicate is consistently
    // fast and the control consistently slow.
    let success = dup_fast * 2 > TRIALS && control_fast * 2 < TRIALS;
    PageSharingOutcome {
        dup_reloads,
        control_reloads,
        verdict: AttackVerdict { success },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_against_ksm() {
        let o = run(EngineKind::Ksm);
        assert!(
            o.verdict.success,
            "KSM: victim access must refill the shared line: {o:?}"
        );
    }

    #[test]
    fn succeeds_against_wpf() {
        let o = run(EngineKind::Wpf);
        assert!(
            o.verdict.success,
            "WPF shares physical lines after merge: {o:?}"
        );
    }

    #[test]
    fn fails_against_vusion() {
        let o = run(EngineKind::VUsion);
        assert!(
            !o.verdict.success,
            "VUsion: reload must not correlate with victim access: {o:?}"
        );
    }

    #[test]
    fn fails_without_fusion() {
        let o = run(EngineKind::NoFusion);
        assert!(!o.verdict.success, "no fusion, nothing shared: {o:?}");
    }
}
