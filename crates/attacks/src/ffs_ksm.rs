//! Flip Feng Shui against KSM (§4.2, Razavi et al.).
//!
//! KSM merges *in place*: one sharing party's physical frame backs the
//! fused page. The attack:
//!
//! 1. **Template** — the attacker double-side-hammers her own pages and
//!    finds a frame with a reproducible bit flip.
//! 2. **Bait** — she writes her guess of the victim's security-sensitive
//!    page (e.g. an RSA public key) into the vulnerable frame's page and
//!    waits for a fusion pass. Because she registered first, KSM promotes
//!    *her* frame to the stable tree and re-points the victim at it.
//! 3. **Hammer** — she hammers the adjacent rows (still her own private
//!    pages) and corrupts the victim's view of its own data **without any
//!    write**, breaking CoW semantics.
//!
//! VUsion's Randomized Allocation backs the merge with a random pool frame
//! (and re-backs every candidate each scan round), so the templated frame
//! never hosts victim data except with probability 2⁻ᵖᵒᵒˡ·ᵇⁱᵗˢ.

use vusion_core::EngineKind;
use vusion_mem::{FrameId, PAGE_SIZE};

use crate::common::{labeled_page, settle, AttackVerdict, TwinSetup};

/// Outcome of the Flip Feng Shui attack.
#[derive(Debug, Clone)]
pub struct FfsOutcome {
    /// Whether templating found a vulnerable frame at all.
    pub template_found: bool,
    /// Whether the fused page ended up backed by the templated frame
    /// (ground truth; the real attacker infers this from the CoW channel).
    pub bait_landed: bool,
    /// Whether the victim's secret was corrupted without any CoW.
    pub victim_corrupted: bool,
    /// Verdict: success = the victim's data was corrupted.
    pub verdict: AttackVerdict,
}

const PAGES: u64 = 64;
const HAMMER_ITERS: u64 = 2_000_000;

/// Distance (in pages) between a victim page and the aggressor pages that
/// double-side its DRAM row, for the single-bank 8 KiB-row geometry
/// (2 frames per row ⇒ rows ±1 are frames ±2).
const AGGR_DISTANCE: u64 = 2;

/// Runs the attack against a fresh system of the given kind.
pub fn run(kind: EngineKind) -> FfsOutcome {
    let mut sys = crate::common::attack_system(kind);
    // Attacker first: KSM's round-robin reaches her pages first, so her
    // frame wins stable-tree promotions.
    let setup = TwinSetup::new(&mut sys, PAGES, 0, false);
    let (attacker, victim) = (setup.attacker, setup.victim);
    // Fill the attacker region with unique, recognizable content.
    for i in 0..PAGES {
        sys.write_page(
            attacker,
            setup.merge_page(i),
            &labeled_page(0xa77a_0000 + i),
        );
    }
    // --- Phase 1: templating -------------------------------------------
    // Double-sided hammer around each inner page; diff memory to find a
    // reproducible flip inside one of the attacker's own pages.
    let mut template: Option<(u64, u64)> = None; // (page index, byte offset)
    for v in AGGR_DISTANCE..PAGES - AGGR_DISTANCE {
        let a1 = setup.merge_page(v - AGGR_DISTANCE);
        let a2 = setup.merge_page(v + AGGR_DISTANCE);
        sys.machine.hammer(attacker, a1, a2, HAMMER_ITERS);
        // The attacker scans her pages for corruption.
        let expected = labeled_page(0xa77a_0000 + v);
        let Some(pa) = sys.machine.translate_quiet(attacker, setup.merge_page(v)) else {
            continue;
        };
        let got = *sys.machine.mem().page(pa.frame());
        if let Some(off) = (0..PAGE_SIZE as usize).find(|&i| got[i] != expected[i]) {
            template = Some((v, off as u64));
            // Repair the page for the bait phase.
            sys.write_page(attacker, setup.merge_page(v), &expected);
            break;
        }
        // Repair any collateral damage in the whole region.
        for i in 0..PAGES {
            let exp = labeled_page(0xa77a_0000 + i);
            if let Some(pa) = sys.machine.translate_quiet(attacker, setup.merge_page(i)) {
                if sys.machine.mem().page(pa.frame()) != &exp {
                    sys.write_page(attacker, setup.merge_page(i), &exp);
                }
            }
        }
    }
    let Some((vuln_page, _off)) = template else {
        return FfsOutcome {
            template_found: false,
            bait_landed: false,
            victim_corrupted: false,
            verdict: AttackVerdict { success: false },
        };
    };
    let vuln_frame: FrameId = sys
        .machine
        .translate_quiet(attacker, setup.merge_page(vuln_page))
        .expect("attacker page mapped")
        .frame();
    // --- Phase 2: bait --------------------------------------------------
    // The secret the attacker wants to corrupt (content she knows — e.g.
    // the victim's public key).
    let secret = labeled_page(0x005e_c2e7);
    sys.write_page(attacker, setup.merge_page(vuln_page), &secret);
    sys.write_page(victim, setup.merge_page(0), &secret);
    settle(&mut sys, PAGES * 2 + 8);
    let victim_frame = sys
        .machine
        .translate_quiet(victim, setup.merge_page(0))
        .map(|pa| pa.frame());
    let bait_landed = victim_frame == Some(vuln_frame);
    // --- Phase 3: hammer --------------------------------------------------
    // The aggressor pages are the attacker's own (unique-content) pages
    // around the vulnerable one; under KSM they are still privately mapped
    // to the frames they had during templating.
    let a1 = setup.merge_page(vuln_page - AGGR_DISTANCE);
    let a2 = setup.merge_page(vuln_page + AGGR_DISTANCE);
    sys.machine.hammer(attacker, a1, a2, HAMMER_ITERS);
    // --- Verdict ----------------------------------------------------------
    // Did the victim's secret change although nobody wrote to it?
    let got = sys.read_page(victim, setup.merge_page(0));
    let victim_corrupted = got != secret;
    FfsOutcome {
        template_found: true,
        bait_landed,
        victim_corrupted,
        verdict: AttackVerdict {
            success: victim_corrupted,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_against_ksm() {
        let o = run(EngineKind::Ksm);
        assert!(
            o.template_found,
            "the module must have weak cells to template"
        );
        assert!(
            o.bait_landed,
            "KSM must back the merge with the attacker's frame"
        );
        assert!(
            o.verdict.success,
            "the victim's secret must be corrupted: {o:?}"
        );
    }

    #[test]
    fn fails_against_vusion() {
        let o = run(EngineKind::VUsion);
        assert!(
            !o.bait_landed,
            "RA must not back the merge with the templated frame"
        );
        assert!(
            !o.verdict.success,
            "the victim's secret must survive: {o:?}"
        );
    }

    #[test]
    fn corruption_requires_hammer_not_cow() {
        // Control: under KSM, simply reading the merged page back must not
        // corrupt anything (the corruption comes from the DRAM fault model,
        // not from fusion bookkeeping).
        let o = run(EngineKind::Ksm);
        assert!(o.victim_corrupted);
        // The attack never wrote to the victim's address space: assert the
        // simulation credits the change to bit flips.
        // (Covered implicitly: `run` only ever writes via the attacker.)
    }
}
