//! CI bench-regression gate over `BENCH_micro.json`.
//!
//! Compares the fresh run's `scan_*` medians against the carried
//! `"baseline"` object (the pre-optimization numbers pinned by the micro
//! harness) and fails — exit code 1 — if any shared bench regressed by
//! more than 25% *and* more than an absolute 50 µs. The dual threshold is
//! the usual defense against noise-dominated cases: a steady-state scan
//! visit completes in single-digit microseconds, where timer granularity
//! and host drift between the baseline's machine and the current runner
//! routinely swing 2–3×, while a real scan-path regression (the thing the
//! gate exists to catch) costs hundreds of microseconds per pass. A
//! per-bench diff is written to `BENCH_gate_diff.json` either way, so CI
//! can upload it as an artifact. `vlint_*` benches are held to an
//! absolute wall-time ceiling instead of the ratio gate (the linter's
//! cost tracks tree size, which every PR is allowed to grow).
//!
//! The parser is hand-rolled (the workspace carries no JSON dependency)
//! and matches the shape the harness emits: one result object per line,
//! `"name"` and `"median_ns"` fields, a top-level `"baseline"` key after
//! the `"results"` array. Benches present on only one side (new scaling
//! curves, retired cases) are reported as `"new"`/`"retired"` and never
//! gate.

use std::process::ExitCode;

/// Allowed median growth before the gate fails: 25%.
const MAX_RATIO: f64 = 1.25;

/// Noise floor: growth under 50 µs absolute never fails the gate, however
/// large the ratio. Microsecond-scale benches are timer-noise-dominated.
const MIN_DELTA_NS: u64 = 50_000;

/// Absolute wall-time ceiling for `vlint_*` benches: 10 s per pass. The
/// linter's cost grows with tree size by design, so a ratio-vs-baseline
/// gate would flag every PR that adds code; the ceiling instead catches
/// the accidental-quadratic case (a fixpoint that stops converging, a
/// call-graph blowup) while leaving room for years of normal growth —
/// the full-workspace pass currently completes in well under a second.
const VLINT_MAX_NS: u64 = 10_000_000_000;

/// Extracts the balanced `[...]` starting at the first `"results":` at or
/// after `from`. Bench names never contain brackets, so bracket counting
/// is exact.
fn results_array(json: &str, from: usize) -> Option<&str> {
    let pos = from + json[from..].find("\"results\":")?;
    let open = pos + json[pos..].find('[')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Pulls `(name, median_ns)` out of every object in a results array.
fn parse_results(array: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = array;
    while let Some(start) = rest.find('{') {
        let Some(end) = rest[start..].find('}') else {
            break;
        };
        let obj = &rest[start..start + end];
        if let (Some(name), Some(median)) = (field_str(obj, "name"), field_u64(obj, "median_ns")) {
            out.push((name, median));
        }
        rest = &rest[start + end + 1..];
    }
    out
}

fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let pos = obj.find(&pat)? + pat.len();
    let rest = obj[pos..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn field_u64(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let pos = obj.find(&pat)? + pat.len();
    let digits: String = obj[pos..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

struct Row {
    name: String,
    baseline: Option<u64>,
    current: Option<u64>,
}

impl Row {
    /// `ratio > MAX_RATIO` *and* growth past the noise floor, on a gated
    /// (scan_*) bench present on both sides. A zero baseline cannot
    /// regress (nothing to divide by). `vlint_*` benches are instead held
    /// to the absolute [`VLINT_MAX_NS`] ceiling — baseline or not.
    fn verdict(&self) -> (&'static str, Option<f64>) {
        if self.name.starts_with("vlint_") {
            let ratio = match (self.baseline, self.current) {
                (Some(b), Some(c)) if b > 0 => Some(c as f64 / b as f64),
                _ => None,
            };
            return match self.current {
                Some(c) if c > VLINT_MAX_NS => ("over_ceiling", ratio),
                _ => ("ok", ratio),
            };
        }
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => {
                if b == 0 {
                    return ("ok", None);
                }
                let ratio = c as f64 / b as f64;
                let gated = self.name.starts_with("scan_");
                if gated && ratio > MAX_RATIO && c.saturating_sub(b) > MIN_DELTA_NS {
                    ("regressed", Some(ratio))
                } else {
                    ("ok", Some(ratio))
                }
            }
            (None, Some(_)) => ("new", None),
            (Some(_), None) => ("retired", None),
            (None, None) => ("ok", None),
        }
    }
}

fn render_diff(rows: &[Row], failures: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"vusion-bench-gate/v1\",\n");
    s.push_str(&format!("  \"max_ratio\": {MAX_RATIO},\n"));
    s.push_str(&format!("  \"min_delta_ns\": {MIN_DELTA_NS},\n"));
    s.push_str(&format!("  \"vlint_max_ns\": {VLINT_MAX_NS},\n"));
    s.push_str(&format!("  \"regressions\": {failures},\n"));
    s.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let (status, ratio) = row.verdict();
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let fmt = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
        let ratio = ratio.map_or("null".to_string(), |r| format!("{r:.3}"));
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_median_ns\": {}, \"median_ns\": {}, \"ratio\": {}, \"status\": \"{}\"}}{}\n",
            row.name,
            fmt(row.baseline),
            fmt(row.current),
            ratio,
            status,
            comma
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() -> ExitCode {
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut args = std::env::args().skip(1);
    let input = args
        .next()
        .unwrap_or_else(|| format!("{repo_root}/BENCH_micro.json"));
    let output = args
        .next()
        .unwrap_or_else(|| format!("{repo_root}/BENCH_gate_diff.json"));
    let json = match std::fs::read_to_string(&input) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_gate: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(current) = results_array(&json, 0).map(parse_results) else {
        eprintln!("bench_gate: no results array in {input}");
        return ExitCode::FAILURE;
    };
    // The baseline key follows the top-level results/metrics; its own
    // results array (if any — first runs carry `"baseline": null`) is the
    // first one after the key.
    let baseline: Vec<(String, u64)> = json
        .find("\"baseline\":")
        .and_then(|pos| results_array(&json, pos))
        .map(parse_results)
        .unwrap_or_default();
    let mut rows: Vec<Row> = Vec::new();
    for (name, median) in &current {
        rows.push(Row {
            name: name.clone(),
            baseline: baseline.iter().find(|(n, _)| n == name).map(|&(_, m)| m),
            current: Some(*median),
        });
    }
    for (name, median) in &baseline {
        if !current.iter().any(|(n, _)| n == name) {
            rows.push(Row {
                name: name.clone(),
                baseline: Some(*median),
                current: None,
            });
        }
    }
    let mut failures = 0usize;
    for row in &rows {
        let (status, ratio) = row.verdict();
        if status == "regressed" {
            failures += 1;
            eprintln!(
                "bench_gate: {} regressed {:.2}x (baseline {} ns, now {} ns)",
                row.name,
                ratio.unwrap_or(0.0),
                row.baseline.unwrap_or(0),
                row.current.unwrap_or(0),
            );
        } else if status == "over_ceiling" {
            failures += 1;
            eprintln!(
                "bench_gate: {} over the absolute ceiling ({} ns > {} ns max)",
                row.name,
                row.current.unwrap_or(0),
                VLINT_MAX_NS,
            );
        }
    }
    let diff = render_diff(&rows, failures);
    if let Err(e) = std::fs::write(&output, &diff) {
        eprintln!("bench_gate: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    // The absolute `vlint_*` ceiling applies even without a baseline;
    // only the ratio gate needs one.
    if baseline.is_empty() && failures == 0 {
        println!("bench_gate: no baseline to compare against (first run) — pass");
        return ExitCode::SUCCESS;
    }
    let gated = rows
        .iter()
        .filter(|r| r.name.starts_with("scan_") && r.baseline.is_some() && r.current.is_some())
        .count();
    println!(
        "bench_gate: {gated} scan_* benches gated, {failures} regression(s); diff at {output}"
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
