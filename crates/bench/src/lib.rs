//! Shared helpers for the per-table / per-figure bench harnesses.
//!
//! Every table and figure of the paper's §9 evaluation has a bench target
//! in `benches/` (`harness = false`): running `cargo bench -p vusion-bench`
//! regenerates the paper's rows and series on the simulated machine.
//! `EXPERIMENTS.md` records the paper-vs-measured comparison.

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, System};
use vusion_workloads::images::ImageSpec;
use vusion_workloads::VmHandle;

/// Prints a figure/table header.
pub fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Prints one row of `label: value` pairs.
pub fn row(label: &str, cells: &[(&str, String)]) {
    let cells: Vec<String> = cells.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("{label:<14} {}", cells.join("  "));
}

/// Boots `n` VMs of the same family (distinct unique seeds) and returns
/// their handles. The standard multi-VM backdrop of the evaluation
/// ("four VMs ... one runs the benchmark while others provide load").
pub fn boot_fleet<P: FusionPolicy>(sys: &mut System<P>, n: usize, family: u64) -> Vec<VmHandle> {
    (0..n)
        .map(|i| ImageSpec::small(family, 100 + i as u64).boot(sys, &format!("vm{i}")))
        .collect()
}

/// Relative overhead in percent: `(t - base) / base * 100`.
pub fn overhead_pct(base_ns: u64, t_ns: u64) -> f64 {
    (t_ns as f64 - base_ns as f64) / base_ns as f64 * 100.0
}

/// Formats an engine label padded for tables.
pub fn engine_cell(kind: EngineKind) -> String {
    format!("{:<11}", kind.label())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        assert_eq!(overhead_pct(100, 102), 2.0);
        assert_eq!(overhead_pct(200, 190), -5.0);
    }
}
