//! Shared helpers for the per-table / per-figure bench harnesses.
//!
//! Every table and figure of the paper's §9 evaluation has a bench target
//! in `benches/` (`harness = false`): running `cargo bench -p vusion-bench`
//! regenerates the paper's rows and series on the simulated machine.
//! `EXPERIMENTS.md` records the paper-vs-measured comparison.
//!
//! Each harness routes its table through [`Report`], which renders the
//! exact text the harness always printed *and* accumulates a structured
//! JSON sidecar written to `bench_logs/<slug>.json` at the repo root, so
//! CI and downstream tooling can diff runs without scraping stdout.

use std::fmt::Write as _;
use std::path::PathBuf;

use vusion_core::EngineKind;
use vusion_kernel::{FusionPolicy, System};
use vusion_workloads::images::ImageSpec;
use vusion_workloads::VmHandle;

/// Schema tag stamped into every table sidecar.
pub const TABLE_SCHEMA: &str = "vusion-bench-table/v1";

/// Directory (repo-root relative) receiving JSON sidecars.
pub fn bench_logs_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_logs"))
}

/// Derives the sidecar file stem from a table/figure id:
/// `"Figure 3"` → `figure_3`, `"Section 9.1"` → `section_9_1`.
pub fn slugify(id: &str) -> String {
    let mut out = String::new();
    for c in id.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Table/figure writer: renders the same text the ad-hoc `println!`
/// harnesses produced, while recording every row for the JSON sidecar.
///
/// Construction prints the `=== id: title ===` header. [`Report::row`]
/// renders the classic `label  k=v  k=v` line; [`Report::raw_row`] prints
/// a pre-formatted line (custom column widths) while still capturing the
/// structured cells; [`Report::text`] passes free-form lines through and
/// keeps them as notes. [`Report::finish`] writes the sidecar.
pub struct Report {
    id: String,
    title: String,
    rows: Vec<(String, Vec<(String, String)>)>,
    notes: Vec<String>,
}

impl Report {
    /// Starts a report and prints the figure/table header.
    pub fn new(id: &str, title: &str) -> Self {
        println!("\n=== {id}: {title} ===");
        Report {
            id: id.to_string(),
            title: title.to_string(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Prints a free-form line verbatim and records it as a note.
    pub fn text(&mut self, line: impl AsRef<str>) {
        let line = line.as_ref();
        println!("{line}");
        self.notes.push(line.to_string());
    }

    /// Prints one `label  k=v  k=v` row and records the cells.
    pub fn row(&mut self, label: &str, cells: &[(&str, String)]) {
        let rendered: Vec<String> = cells.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("{label:<14} {}", rendered.join("  "));
        self.record(label, cells);
    }

    /// Prints `line` verbatim (custom table formats) and records the
    /// structured cells under `label`.
    pub fn raw_row(&mut self, line: &str, label: &str, cells: &[(&str, String)]) {
        println!("{line}");
        self.record(label, cells);
    }

    /// Records a row in the sidecar without printing anything (series
    /// data too long for stdout).
    pub fn record(&mut self, label: &str, cells: &[(&str, String)]) {
        self.rows.push((
            label.to_string(),
            cells
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        ));
    }

    /// Renders the sidecar document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_quote(TABLE_SCHEMA));
        let _ = writeln!(out, "  \"id\": {},", json_quote(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_quote(&self.title));
        out.push_str("  \"rows\": [");
        for (i, (label, cells)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"label\": {}, \"cells\": {{", json_quote(label));
            for (j, (k, v)) in cells.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_quote(k), json_quote(v));
            }
            out.push_str("}}");
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_quote(n));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes `bench_logs/<slug>.json`. Best-effort: a read-only checkout
    /// must not fail the bench, so IO errors only warn.
    pub fn finish(&self) {
        let dir = bench_logs_dir();
        let path = dir.join(format!("{}.json", slugify(&self.id)));
        if let Err(e) =
            std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, self.to_json()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Boots `n` VMs of the same family (distinct unique seeds) and returns
/// their handles. The standard multi-VM backdrop of the evaluation
/// ("four VMs ... one runs the benchmark while others provide load").
pub fn boot_fleet<P: FusionPolicy>(sys: &mut System<P>, n: usize, family: u64) -> Vec<VmHandle> {
    (0..n)
        .map(|i| ImageSpec::small(family, 100 + i as u64).boot(sys, &format!("vm{i}")))
        .collect()
}

/// Relative overhead in percent: `(t - base) / base * 100`.
pub fn overhead_pct(base_ns: u64, t_ns: u64) -> f64 {
    (t_ns as f64 - base_ns as f64) / base_ns as f64 * 100.0
}

/// Formats an engine label padded for tables.
pub fn engine_cell(kind: EngineKind) -> String {
    format!("{:<11}", kind.label())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        assert_eq!(overhead_pct(100, 102), 2.0);
        assert_eq!(overhead_pct(200, 190), -5.0);
    }

    #[test]
    fn slugs() {
        assert_eq!(slugify("Figure 3"), "figure_3");
        assert_eq!(slugify("Section 9.1"), "section_9_1");
        assert_eq!(slugify("Ablation/RA"), "ablation_ra");
        assert_eq!(slugify("Table 10"), "table_10");
    }

    #[test]
    fn sidecar_json_shape() {
        let mut r = Report {
            id: "Table 0".into(),
            title: "t\"t".into(),
            rows: Vec::new(),
            notes: Vec::new(),
        };
        r.record("a", &[("k", "v".into()), ("n", "1".into())]);
        r.notes.push("done".into());
        let js = r.to_json();
        assert!(js.contains("\"schema\": \"vusion-bench-table/v1\""));
        assert!(js.contains("\"title\": \"t\\\"t\""));
        assert!(js.contains("{\"label\": \"a\", \"cells\": {\"k\": \"v\", \"n\": \"1\"}}"));
        assert!(js.contains("\"notes\": [\"done\"]"));
    }

    #[test]
    fn quote_escapes_controls() {
        assert_eq!(json_quote("a\nb"), "\"a\\nb\"");
        assert_eq!(json_quote("\u{1}"), "\"\\u0001\"");
    }
}
