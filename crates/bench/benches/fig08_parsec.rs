//! Figure 8: performance overhead on PARSEC vs fusion-off.
//!
//! Expected shape: KSM ≈ +1.7%, VUsion adds ≈ +0.5% on top, and VUsion's
//! THP enhancements *recover* performance (the paper measures VUsion-THP
//! ahead of KSM).

use vusion_bench::{boot_fleet, overhead_pct, Report};
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_stats::geometric_mean;
use vusion_workloads::cpu_suites::{parsec, run_profile, setup_profile};

const OPS: u64 = 12_000;

/// Runs the profile with scanner wakeups interleaved (the scanner runs on
/// its own core alongside the workload), measuring only the workload time.
fn measure(
    sys: &mut vusion_kernel::System<Box<dyn vusion_kernel::FusionPolicy>>,
    vm: &vusion_workloads::VmHandle,
    p: &vusion_workloads::cpu_suites::CpuProfile,
    seed: u64,
) -> u64 {
    // Warm phase: the benchmark runs while fusion settles over idle
    // memory. The scan rate is kept far below the workload's access rate,
    // preserving the paper's ratio (5000 pages/s against ~10^9 accesses/s):
    // time compression would otherwise let the scanner revisit pages with
    // no workload progress in between and trap the working set.
    for chunk in 0..4 {
        run_profile(sys, vm, p, OPS / 8, seed * 7 + chunk);
        sys.force_scans(1);
    }
    let mut total = 0;
    for chunk in 0..8 {
        total += run_profile(sys, vm, p, OPS / 8, seed + chunk);
        sys.force_scans(1);
    }
    total
}

fn main() {
    let mut rep = Report::new("Figure 8", "Performance overhead on PARSEC (%)");
    let profiles = parsec();
    let engines = [EngineKind::Ksm, EngineKind::VUsion, EngineKind::VUsionThp];
    rep.text(format!(
        "{:<14} {:>8} {:>8} {:>11}",
        "benchmark", "KSM", "VUsion", "VUsion THP"
    ));
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    for p in &profiles {
        // Every configuration runs on the same THP-enabled host, like the
        // paper's testbed; the engines differ in how many THPs they break.
        let baseline = {
            let mut sys =
                EngineKind::NoFusion.build_system(MachineConfig::guest_2g_scaled().with_thp());
            let vms = boot_fleet(&mut sys, 4, 0);
            setup_profile(&mut sys, &vms[0], p);
            measure(&mut sys, &vms[0], p, 43)
        };
        let mut cells = Vec::new();
        for (ei, &kind) in engines.iter().enumerate() {
            let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
            let vms = boot_fleet(&mut sys, 4, 0);
            setup_profile(&mut sys, &vms[0], p);
            let t = measure(&mut sys, &vms[0], p, 43);
            ratios[ei].push(t as f64 / baseline as f64);
            cells.push(overhead_pct(baseline, t));
        }
        rep.raw_row(
            &format!(
                "{:<14} {:>7.1}% {:>7.1}% {:>10.1}%",
                p.name, cells[0], cells[1], cells[2]
            ),
            p.name,
            &[
                ("ksm_pct", format!("{:.1}", cells[0])),
                ("vusion_pct", format!("{:.1}", cells[1])),
                ("vusion_thp_pct", format!("{:.1}", cells[2])),
            ],
        );
    }
    rep.text(format!("{:-<45}", ""));
    for (ei, &kind) in engines.iter().enumerate() {
        let gm = (geometric_mean(&ratios[ei]) - 1.0) * 100.0;
        rep.raw_row(
            &format!("geomean {:<12} {:>6.1}%", kind.label(), gm),
            &format!("geomean {}", kind.label()),
            &[("overhead_pct", format!("{gm:.1}"))],
        );
    }
    rep.text("paper geomeans: KSM +1.7%, VUsion +2.2% overall, VUsion THP +0.8% overall");
    rep.finish();
    for r in &ratios {
        assert!(
            geometric_mean(r) < 1.25,
            "overhead out of the Figure 8 band"
        );
    }
}
