//! Ablation study (§7.1 design decisions): remove one VUsion mechanism at
//! a time and probe the channel it closes.
//!
//! | variant | prefetch leak | CoA timing KS p | frame stable |
//! |---|---|---|---|
//! | full VUsion | no | high | no |
//! | − PCD | **yes** | high | no |
//! | − deferred free | no | **low** | no |
//! | − re-randomize | no | high | **yes** |

use vusion_attacks::ablation::{
    backing_frame_stable_across_rounds, coa_timing_asymmetry, prefetch_leaks, Ablation,
};
use vusion_bench::Report;

fn main() {
    let mut rep = Report::new("Ablation", "Each §7.1 mechanism closes exactly one channel");
    rep.text(format!(
        "{:<18} {:>14} {:>18} {:>22}",
        "variant", "prefetch leak", "CoA timing KS p", "frame stable (rounds)"
    ));
    for ab in Ablation::all() {
        let leak = prefetch_leaks(ab);
        let ks = coa_timing_asymmetry(ab);
        let stable = backing_frame_stable_across_rounds(ab);
        rep.raw_row(
            &format!(
                "{:<18} {:>14} {:>18.3} {:>22}",
                ab.label(),
                if leak { "LEAKS" } else { "blocked" },
                ks.p_value,
                if stable {
                    "STABLE (leaky)"
                } else {
                    "re-randomized"
                }
            ),
            ab.label(),
            &[
                (
                    "prefetch_leak",
                    (if leak { "LEAKS" } else { "blocked" }).to_string(),
                ),
                ("coa_timing_ks_p", format!("{:.3}", ks.p_value)),
                (
                    "frame_stable",
                    (if stable { "STABLE" } else { "re-randomized" }).to_string(),
                ),
            ],
        );
    }
    // Enforce the expected diagonal.
    assert!(!prefetch_leaks(Ablation::None));
    assert!(prefetch_leaks(Ablation::NoPcd));
    assert!(coa_timing_asymmetry(Ablation::None).same_distribution(0.05));
    assert!(!coa_timing_asymmetry(Ablation::NoDeferredFree).same_distribution(0.05));
    assert!(!backing_frame_stable_across_rounds(Ablation::None));
    assert!(backing_frame_stable_across_rounds(Ablation::NoRerandomize));
    rep.text("\neach mechanism is necessary: removing it reopens exactly its channel");
    rep.finish();
}
