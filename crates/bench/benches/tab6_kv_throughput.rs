//! Table 6: Redis and Memcached throughput under the memtier-like load.
//!
//! Expected shape: KSM and VUsion cost single-digit to ~10% throughput;
//! VUsion's THP enhancements close most of the gap.

use vusion_bench::{boot_fleet, engine_cell, Report};
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_workloads::kv::KvStore;

const OPS: u64 = 8_000;

fn run(kind: EngineKind, store: KvStore) -> f64 {
    let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
    let vms = boot_fleet(&mut sys, 4, 0);
    let inst = store.start(&mut sys, &vms[0]);
    // Warm with the scanner interleaved, as in the live deployment.
    for i in 0..10 {
        inst.run_load(&mut sys, OPS / 20, 30 + i);
        // Slow scanner relative to the op rate (paper ratio).
        sys.force_scans(5);
    }
    inst.run_load(&mut sys, OPS, 31).ops_per_s
}

fn main() {
    let mut rep = Report::new("Table 6", "Throughput of Redis and Memcached (kreq/s)");
    rep.text(format!(
        "{:<12} {:>16} {:>20}",
        "engine", "Redis", "Memcached"
    ));
    let mut base: Option<(f64, f64)> = None;
    let mut rows = Vec::new();
    for kind in EngineKind::evaluation_set() {
        let redis = run(kind, KvStore::redis());
        let memc = run(kind, KvStore::memcached());
        let (br, bm) = *base.get_or_insert((redis, memc));
        rep.raw_row(
            &format!(
                "{} {:>8.1} ({:>5.1}%) {:>10.1} ({:>5.1}%)",
                engine_cell(kind),
                redis / 1000.0,
                redis / br * 100.0,
                memc / 1000.0,
                memc / bm * 100.0
            ),
            kind.label(),
            &[
                ("redis_kreq_s", format!("{:.1}", redis / 1000.0)),
                ("redis_rel_pct", format!("{:.1}", redis / br * 100.0)),
                ("memcached_kreq_s", format!("{:.1}", memc / 1000.0)),
                ("memcached_rel_pct", format!("{:.1}", memc / bm * 100.0)),
            ],
        );
        rows.push((kind, redis, memc));
    }
    rep.text(
        "paper: Redis 175.3/155.7/155.1/163.8 kreq/s; Memcached 167.5/164.0/155.1/163.9 kreq/s",
    );
    rep.finish();
    let get = |k: EngineKind| rows.iter().find(|(kk, _, _)| *kk == k).expect("ran");
    let (_, _, m_vus) = get(EngineKind::VUsion);
    let (_, _, m_thp) = get(EngineKind::VUsionThp);
    assert!(
        m_thp >= m_vus,
        "THP enhancements must not hurt Memcached throughput"
    );
    let (_, r_none, _) = get(EngineKind::NoFusion);
    let (_, r_vus, _) = get(EngineKind::VUsion);
    assert!(
        *r_vus > r_none * 0.6,
        "VUsion Redis throughput fell out of band"
    );
}
