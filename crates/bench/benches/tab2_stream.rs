//! Table 2: Stream bandwidth under No dedup / KSM / VUsion / VUsion THP.
//!
//! Expected shape: all four configurations within ~1% of each other — the
//! slow default scanning rate barely perturbs a bandwidth-bound kernel.

use vusion_bench::{boot_fleet, engine_cell, Report};
use vusion_core::EngineKind;
use vusion_workloads::runner::ExperimentMachine;
use vusion_workloads::stream::StreamBench;

fn main() {
    let mut rep = Report::new("Table 2", "Performance of the Stream benchmark (MiB/s)");
    rep.text(format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "engine", "copy", "scale", "add", "triad"
    ));
    let mut baseline_copy = None;
    for kind in EngineKind::evaluation_set() {
        let base = if kind == EngineKind::VUsionThp {
            ExperimentMachine::standard_thp()
        } else {
            ExperimentMachine::standard()
        };
        let mut sys = kind.build_system(base);
        let vms = boot_fleet(&mut sys, 4, 0);
        let bench = StreamBench {
            pages: 256,
            iterations: 2,
        };
        bench.setup(&mut sys, &vms[0]);
        let r = bench.run(&mut sys, &vms[0]);
        rep.raw_row(
            &format!(
                "{} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                engine_cell(kind),
                r.copy_mib_s,
                r.scale_mib_s,
                r.add_mib_s,
                r.triad_mib_s
            ),
            kind.label(),
            &[
                ("copy_mib_s", format!("{:.0}", r.copy_mib_s)),
                ("scale_mib_s", format!("{:.0}", r.scale_mib_s)),
                ("add_mib_s", format!("{:.0}", r.add_mib_s)),
                ("triad_mib_s", format!("{:.0}", r.triad_mib_s)),
            ],
        );
        let b = *baseline_copy.get_or_insert(r.copy_mib_s);
        assert!(
            r.copy_mib_s > b * 0.90,
            "{kind:?} copy bandwidth degraded beyond the Table 2 band"
        );
    }
    rep.text("paper: all configurations within ~1% of No-dedup (11.0-12.5 GB/s on the testbed)");
    rep.finish();
}
