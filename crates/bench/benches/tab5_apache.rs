//! Table 5: Apache throughput and latency percentiles.
//!
//! Expected shape: fusion engines that split worker THPs (KSM, plain
//! VUsion) lose double-digit throughput; VUsion's THP enhancements recover
//! most of it. Latency percentiles follow the same ordering.

use vusion_bench::{boot_fleet, engine_cell, Report};
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_rng::rngs::StdRng;
use vusion_rng::SeedableRng;
use vusion_stats::Percentiles;
use vusion_workloads::apache::ApacheServer;

const WARMUP: u64 = 400;
const REQUESTS: u64 = 2500;

fn main() {
    let mut rep = Report::new("Table 5", "Performance of the Apache server");
    rep.text(format!(
        "{:<12} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "engine", "kreq/s", "rel", "p75 us", "p90 us", "p99 us"
    ));
    let mut baseline = None;
    let mut results = Vec::new();
    for kind in EngineKind::evaluation_set() {
        // Server experiments run on a THP host (the paper's testbed does).
        let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
        let vms = boot_fleet(&mut sys, 4, 0);
        let server = ApacheServer::default();
        let mut inst = server.start(&mut sys, &vms[0]);
        // Warm up with the scanner running *concurrently*, as in the real
        // deployment: fusion proceeds over idle memory while the server
        // keeps its working set hot.
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..12 {
            for _ in 0..WARMUP / 4 {
                inst.serve(&mut sys, &mut rng);
            }
            // Slow scanner relative to the request rate (paper ratio).
            sys.force_scans(15);
        }
        let r = inst.run_load(&mut sys, REQUESTS, 22);
        let p = Percentiles::of(&r.latencies_ms);
        let b = *baseline.get_or_insert(r.req_per_s);
        rep.raw_row(
            &format!(
                "{} {:>9.2} {:>7.1}% {:>8.3} {:>8.3} {:>8.3}",
                engine_cell(kind),
                r.req_per_s / 1000.0,
                r.req_per_s / b * 100.0,
                p.p75 * 1000.0,
                p.p90 * 1000.0,
                p.p99 * 1000.0
            ),
            kind.label(),
            &[
                ("kreq_s", format!("{:.2}", r.req_per_s / 1000.0)),
                ("rel_pct", format!("{:.1}", r.req_per_s / b * 100.0)),
                ("p75_us", format!("{:.3}", p.p75 * 1000.0)),
                ("p90_us", format!("{:.3}", p.p90 * 1000.0)),
                ("p99_us", format!("{:.3}", p.p99 * 1000.0)),
            ],
        );
        results.push((kind, r.req_per_s));
    }
    rep.text("paper: No-dedup 22.03 (100%), KSM 18.42 (83.6%), VUsion 18.28 (82.3%), VUsion THP 21.18 (96.1%)");
    rep.finish();
    // Shape: VUsion-THP must beat plain VUsion; baseline must lead.
    let get = |k: EngineKind| results.iter().find(|(kk, _)| *kk == k).expect("ran").1;
    assert!(
        get(EngineKind::NoFusion) >= get(EngineKind::Ksm),
        "No-dedup leads KSM"
    );
    assert!(
        get(EngineKind::VUsionThp) > get(EngineKind::VUsion),
        "THP enhancements must recover Apache throughput"
    );
}
