//! Randomized-Allocation pool-size sweep: measured reuse probability of a
//! templated frame against the paper's `2^-bits` claim (§7.1: a 128 MiB
//! pool = 2¹⁵ frames gives reuse probability 2⁻¹⁵).

use vusion_bench::Report;
use vusion_mem::{BuddyAllocator, FrameId, RandomPool};

fn main() {
    let mut rep = Report::new(
        "Ablation/RA",
        "Templated-frame reuse probability vs pool size",
    );
    rep.text(format!(
        "{:>12} {:>8} {:>12} {:>12} {:>10}",
        "pool frames", "bits", "expected", "measured", "trials"
    ));
    const TRIALS: u64 = 40_000;
    for bits in [4u32, 6, 8, 10, 12] {
        let pool_frames = 1usize << bits;
        let mut buddy = BuddyAllocator::new(FrameId(0), (pool_frames * 4) as u64);
        let mut pool = RandomPool::new(pool_frames, &mut buddy, 0x5eed + u64::from(bits));
        // Template: release a specific frame into the pool, then count how
        // often the very next allocation hands it back (the attacker's
        // best case).
        let mut reused = 0u64;
        for _ in 0..TRIALS {
            let f = pool.alloc_random(&mut buddy).expect("frame");
            pool.free_random(f, &mut buddy).expect("free");
            let g = pool.alloc_random(&mut buddy).expect("frame");
            if f == g {
                reused += 1;
            }
            pool.free_random(g, &mut buddy).expect("free");
        }
        let measured = reused as f64 / TRIALS as f64;
        let expected = 1.0 / pool_frames as f64;
        rep.raw_row(
            &format!(
                "{:>12} {:>8} {:>12.6} {:>12.6} {:>10}",
                pool_frames, bits, expected, measured, TRIALS
            ),
            &format!("bits_{bits}"),
            &[
                ("pool_frames", pool_frames.to_string()),
                ("bits", bits.to_string()),
                ("expected", format!("{expected:.6}")),
                ("measured", format!("{measured:.6}")),
                ("trials", TRIALS.to_string()),
            ],
        );
        assert!(
            measured < expected * 3.0 + 1e-4,
            "reuse probability must scale as 2^-bits (got {measured} at {bits} bits)"
        );
    }
    rep.text("\npaper: 2^15-frame pool => reuse probability 2^-15 (extrapolates from this sweep)");
    rep.finish();
}
