//! Figure 10: memory consumption of four idle VMs, started at intervals.
//!
//! Expected shape: every fusing engine converges to roughly the same
//! consumption, far below no-dedup; VUsion takes longer to get there (it
//! waits for pages to prove idle, and defers merging by a round).

use vusion_bench::Report;
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_workloads::images::ImageSpec;
use vusion_workloads::runner::{consumed_mib, sample_idle};

/// Stagger between VM launches. The paper uses 5 minutes at 2 GB scale; at
/// our 1/512 memory scale the scanner covers a VM proportionally faster,
/// so 20 s of simulated time preserves the shape.
const STAGGER_NS: u64 = 20_000_000_000;
const SAMPLE_NS: u64 = 2_000_000_000;

fn series(kind: EngineKind) -> Vec<(f64, f64)> {
    let mut sys = kind.build_system(MachineConfig::guest_2g_scaled());
    let mut out = Vec::new();
    for i in 0..4 {
        ImageSpec::small(0, i as u64 + 1).boot(&mut sys, &format!("vm{i}"));
        out.push((sys.machine.now_ns() as f64 / 1e9, consumed_mib(&sys)));
        for s in sample_idle(&mut sys, STAGGER_NS, SAMPLE_NS) {
            out.push((s.t_s, s.mib));
        }
    }
    for s in sample_idle(&mut sys, 2 * STAGGER_NS, SAMPLE_NS) {
        out.push((s.t_s, s.mib));
    }
    out
}

fn main() {
    let mut rep = Report::new(
        "Figure 10",
        "Memory consumption of idle VMs (MiB over time)",
    );
    let kinds = [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ];
    let all: Vec<(EngineKind, Vec<(f64, f64)>)> = kinds.iter().map(|&k| (k, series(k))).collect();
    rep.text(format!(
        "t(s)    {:>10} {:>10} {:>10} {:>10}",
        "No dedup", "KSM", "VUsion", "VUsion THP"
    ));
    let n = all.iter().map(|(_, s)| s.len()).min().expect("series");
    for i in (0..n).step_by(2) {
        let mut line = format!("{:<7.0}", all[0].1[i].0);
        let mut cells = Vec::new();
        for (k, s) in &all {
            line.push_str(&format!(" {:>10.2}", s[i].1));
            cells.push((k.label(), format!("{:.2}", s[i].1)));
        }
        rep.raw_row(&line, &format!("t_{:.1}", all[0].1[i].0), &cells);
    }
    let final_mib = |k: EngineKind| {
        all.iter()
            .find(|(kk, _)| *kk == k)
            .expect("ran")
            .1
            .last()
            .expect("samples")
            .1
    };
    let none = final_mib(EngineKind::NoFusion);
    let ksm = final_mib(EngineKind::Ksm);
    let vus = final_mib(EngineKind::VUsion);
    rep.text(format!(
        "\nfinal: No-dedup {none:.1} MiB, KSM {ksm:.1} MiB, VUsion {vus:.1} MiB (paper: VUsion converges to KSM)"
    ));
    rep.finish();
    assert!(ksm < none * 0.8, "KSM must reclaim substantial idle memory");
    assert!(
        vus < none * 0.85,
        "VUsion must reclaim substantial idle memory"
    );
    assert!(
        (vus - ksm).abs() / ksm < 0.30,
        "VUsion must converge near KSM's consumption"
    );
}
