//! Table 7: Redis and Memcached SET/GET latency percentiles.
//!
//! Expected shape: VUsion's tail latencies track KSM's closely; the THP
//! enhancements improve the tail back toward the no-dedup baseline.

use vusion_bench::{boot_fleet, engine_cell, Report};
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_stats::Percentiles;
use vusion_workloads::kv::{KvResult, KvStore};

const OPS: u64 = 8_000;

fn run(kind: EngineKind, store: KvStore) -> KvResult {
    let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
    let vms = boot_fleet(&mut sys, 4, 0);
    let inst = store.start(&mut sys, &vms[0]);
    // Warm with the scanner interleaved, as in the live deployment.
    for i in 0..10 {
        inst.run_load(&mut sys, OPS / 20, 40 + i);
        // Slow scanner relative to the op rate (paper ratio).
        sys.force_scans(5);
    }
    inst.run_load(&mut sys, OPS, 41)
}

fn print_block(
    rep: &mut Report,
    title: &str,
    pick: impl Fn(&KvResult) -> Vec<f64>,
    results: &[(EngineKind, KvResult)],
) {
    rep.text(format!("\n{title} latency (us)"));
    rep.text(format!(
        "{:<12} {:>8} {:>8} {:>8}",
        "engine", "90.0", "99.0", "99.9"
    ));
    for (kind, r) in results {
        let lat = pick(r);
        if lat.is_empty() {
            continue;
        }
        let p = Percentiles::of(&lat);
        rep.raw_row(
            &format!(
                "{} {:>8.3} {:>8.3} {:>8.3}",
                engine_cell(*kind),
                p.p90 * 1000.0,
                p.p99 * 1000.0,
                p.p999 * 1000.0
            ),
            &format!("{title} {}", kind.label()),
            &[
                ("p90_us", format!("{:.3}", p.p90 * 1000.0)),
                ("p99_us", format!("{:.3}", p.p99 * 1000.0)),
                ("p999_us", format!("{:.3}", p.p999 * 1000.0)),
            ],
        );
    }
}

fn main() {
    let mut rep = Report::new("Table 7", "Latency of Redis and Memcached");
    for store in [
        ("Redis", KvStore::redis()),
        ("Memcached", KvStore::memcached()),
    ] {
        let results: Vec<(EngineKind, KvResult)> = EngineKind::evaluation_set()
            .iter()
            .map(|&k| (k, run(k, store.1)))
            .collect();
        print_block(
            &mut rep,
            &format!("{} SET", store.0),
            |r| r.set_latencies_ms.clone(),
            &results,
        );
        print_block(
            &mut rep,
            &format!("{} GET", store.0),
            |r| r.get_latencies_ms.clone(),
            &results,
        );
        // Shape: tails stay within a small factor of the baseline.
        let p999 = |r: &KvResult| Percentiles::of(&r.get_latencies_ms).p999;
        let base = p999(&results[0].1);
        for (kind, r) in &results[1..] {
            assert!(
                p999(r) < base * 20.0 + 0.01,
                "{kind:?} GET tail latency exploded: {} vs {}",
                p999(r),
                base
            );
        }
    }
    rep.text("\npaper: VUsion within ~0.2 ms of KSM at every percentile; THP improves the tail");
    rep.finish();
}
