//! §9.1 "Enforcing RA": KS goodness-of-fit of VUsion's backing-frame
//! choices against the uniform distribution.
//!
//! The paper records the offsets of pages chosen for merge and fake merge
//! with two VMs running, and reports a KS p-value of 0.44 against the
//! uniform distribution. We replay that experiment and additionally show
//! the contrast: the buddy allocator's LIFO choices are grossly
//! non-uniform.

use vusion_bench::{boot_fleet, Report};
use vusion_core::{EngineKind, VUsion, VUsionConfig};
use vusion_kernel::{Machine, MachineConfig, System};
use vusion_stats::ks_test_uniform;

fn main() {
    let mut rep = Report::new("Section 9.1", "Randomized Allocation uniformity (KS test)");
    // Build VUsion directly so we can read its RA trace.
    let mut m = Machine::new(MachineConfig::guest_2g_scaled());
    let policy = VUsion::new(
        &mut m,
        VUsionConfig {
            pool_frames: 4096,
            ..Default::default()
        },
    );
    let mut sys = System::new(m, policy);
    let _vms = boot_fleet(&mut sys, 2, 0);
    sys.force_scans(200);
    let trace: Vec<f64> = sys.policy.ra_trace().iter().map(|&f| f as f64).collect();
    assert!(trace.len() > 500, "expected a substantial RA trace");
    let lo = trace.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = trace.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1.0;
    let ks = ks_test_uniform(&trace, lo, hi);
    rep.row(
        "VUsion RA",
        &[
            ("allocations", trace.len().to_string()),
            ("D", format!("{:.4}", ks.statistic)),
            ("p", format!("{:.3}", ks.p_value)),
            ("paper", "p = 0.44 (uniform)".to_string()),
        ],
    );
    assert!(
        ks.same_distribution(0.01),
        "RA allocations must look uniform (p = {})",
        ks.p_value
    );

    // Contrast: KSM's unmerge allocations come from the LIFO buddy
    // allocator; collect frames assigned by CoW unmerges.
    let mut sys = EngineKind::Ksm.build_system(MachineConfig::guest_2g_scaled());
    let vms = boot_fleet(&mut sys, 2, 0);
    sys.force_scans(200);
    let mut ksm_frames = Vec::new();
    for vm in &vms {
        for i in 0..vm.spec.buddy_pages.min(200) {
            let va = vusion_mem::VirtAddr(vm.buddy_base.0 + i * vusion_mem::PAGE_SIZE);
            sys.write(vm.pid, va, 0xEE); // CoW-unmerge if fused.
            if let Some(pa) = sys.machine.translate_quiet(vm.pid, va) {
                ksm_frames.push(pa.frame().0 as f64);
            }
        }
    }
    let lo = ksm_frames.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = sys.machine.config().frames as f64;
    let ks_ksm = ks_test_uniform(&ksm_frames, lo, hi);
    rep.row(
        "KSM (buddy)",
        &[
            ("allocations", ksm_frames.len().to_string()),
            ("D", format!("{:.4}", ks_ksm.statistic)),
            ("p", format!("{:.2e}", ks_ksm.p_value)),
            ("note", "LIFO reuse: grossly non-uniform".to_string()),
        ],
    );
    assert!(
        !ks_ksm.same_distribution(0.05),
        "buddy allocations must NOT look uniform"
    );
    rep.finish();
}
