//! Figure 11: memory consumption of 16 diverse VMs (44-image catalog).
//!
//! Expected shape: VUsion achieves a fusion rate similar to KSM; VUsion
//! with THP enhancements conserves working-set huge pages at the cost of a
//! substantially reduced fusion rate (the paper measures −61%).

use vusion_bench::Report;
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_workloads::images::ImageCatalog;
use vusion_workloads::runner::{consumed_mib, sample_idle};

fn run(kind: EngineKind) -> (f64, f64, u64) {
    let mut sys = kind.build_system(MachineConfig::guest_2g_scaled());
    let catalog = ImageCatalog::das4(0xda54);
    for (i, spec) in catalog.pick(16, 3).into_iter().enumerate() {
        spec.scaled(1, 2).boot(&mut sys, &format!("vm{i}"));
    }
    let start = consumed_mib(&sys);
    let samples = sample_idle(&mut sys, 120_000_000_000, 10_000_000_000);
    let end = samples.last().expect("samples");
    (start, end.mib, end.pages_saved)
}

fn main() {
    let mut rep = Report::new("Figure 11", "Memory consumption of 16 diverse VMs");
    rep.text(format!(
        "{:<12} {:>12} {:>12} {:>12}",
        "engine", "boot MiB", "settled MiB", "pages saved"
    ));
    let mut results = Vec::new();
    for kind in [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ] {
        let (start, end, saved) = run(kind);
        rep.raw_row(
            &format!(
                "{:<12} {:>12.1} {:>12.1} {:>12}",
                kind.label(),
                start,
                end,
                saved
            ),
            kind.label(),
            &[
                ("boot_mib", format!("{start:.1}")),
                ("settled_mib", format!("{end:.1}")),
                ("pages_saved", saved.to_string()),
            ],
        );
        results.push((kind, end, saved));
    }
    let get = |k: EngineKind| results.iter().find(|(kk, _, _)| *kk == k).expect("ran");
    let (_, none_end, _) = get(EngineKind::NoFusion);
    let (_, ksm_end, ksm_saved) = get(EngineKind::Ksm);
    let (_, _vus_end, vus_saved) = get(EngineKind::VUsion);
    rep.text(format!(
        "\nfusion rate: KSM {ksm_saved} pages, VUsion {vus_saved} pages ({:.0}% of KSM)",
        *vus_saved as f64 * 100.0 / *ksm_saved as f64
    ));
    rep.text("paper shape: VUsion ≈ KSM fusion rate; VUsion-THP trades ~61% of it for THPs");
    rep.finish();
    assert!(ksm_end < none_end, "KSM reclaims memory");
    assert!(
        (*vus_saved as f64) > *ksm_saved as f64 * 0.6,
        "VUsion must approach KSM's rate"
    );
}
