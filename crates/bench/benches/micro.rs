//! Microbenchmarks of the core data structures and hot paths: the content
//! trees (KSM's red-black tree, WPF's AVL tree), the allocators (buddy /
//! linear / randomized pool), LLC accesses, and the end-to-end fault path.
//!
//! Plain self-timed harness (no external benchmark framework): each case
//! runs a warm-up pass, then reports the mean wall-clock time per
//! iteration over a fixed sample count.

use std::hint::black_box;
use std::time::Instant;
use vusion_cache::{Llc, LlcConfig};
use vusion_core::{ContentAvlTree, ContentRbTree};
use vusion_kernel::{Machine, MachineConfig};
use vusion_mem::{
    BuddyAllocator, FrameAllocator, FrameId, LinearAllocator, PageType, PhysAddr, PhysMemory,
    RandomPool, VirtAddr,
};
use vusion_mmu::{Protection, Vma};

const SAMPLES: u32 = 20;

fn bench(name: &str, mut f: impl FnMut()) {
    f(); // Warm-up.
    let start = Instant::now();
    for _ in 0..SAMPLES {
        f();
    }
    let per_iter = start.elapsed() / SAMPLES;
    println!("{name:<32} {per_iter:>12.2?}/iter over {SAMPLES} samples");
}

fn bench_trees() {
    // Content comparisons against real page bytes.
    let mut mem = PhysMemory::new(4096);
    for f in 0..4096u64 {
        mem.write_u64(PhysAddr(f * 4096), f.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    bench("rbtree_insert_find_1k", || {
        let mut t = ContentRbTree::new();
        for f in 0..1024u64 {
            t.insert(FrameId(f), f, |a, b| mem.compare_pages(a, b));
        }
        for f in 0..1024u64 {
            black_box(t.find(FrameId(f), |a, b| mem.compare_pages(a, b)));
        }
    });
    bench("avl_insert_find_1k", || {
        let mut t = ContentAvlTree::new();
        for f in 0..1024u64 {
            t.insert(FrameId(f), f, |a, b| mem.compare_pages(a, b));
        }
        for f in 0..1024u64 {
            black_box(t.find(FrameId(f), |a, b| mem.compare_pages(a, b)));
        }
    });
}

fn bench_allocators() {
    bench("buddy_alloc_free_1k", || {
        let mut a = BuddyAllocator::new(FrameId(0), 2048);
        let frames: Vec<_> = (0..1024).map(|_| a.alloc().expect("frame")).collect();
        for f in frames {
            a.free(f).expect("free");
        }
    });
    bench("linear_reserve_release_256", || {
        let mut a = LinearAllocator::new(FrameId(0), 4096);
        let batch = a.reserve_batch(256, |_| false);
        for f in batch {
            a.free(f).expect("free");
        }
    });
    let mut buddy = BuddyAllocator::new(FrameId(0), 8192);
    let mut pool = RandomPool::new(2048, &mut buddy, 9);
    bench("random_pool_cycle_1k", || {
        for _ in 0..1024 {
            let f = pool.alloc_random(&mut buddy).expect("frame");
            pool.free_random(f, &mut buddy).expect("free");
        }
    });
}

fn bench_llc() {
    let mut llc = Llc::new(LlcConfig::xeon_e3_1240_v5());
    bench("llc_access_stream_4k_lines", || {
        for i in 0..4096u64 {
            black_box(llc.access(PhysAddr(i * 64)));
        }
    });
}

fn bench_fault_path() {
    bench("demand_zero_fault_and_map", || {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 128, Protection::rw()));
        for i in 0..128u64 {
            let va = VirtAddr(0x10000 + i * 4096);
            let f = m.read(pid, va).expect_err("faults");
            m.default_fault(&f);
            black_box(m.read(pid, va).expect("mapped"));
        }
    });
    {
        use vusion_core::{Ksm, KsmConfig};
        use vusion_kernel::{FusionPolicy, System};
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(0x10000), 512);
        let mut sys = System::new(m, Ksm::new(KsmConfig::default()));
        for i in 0..512u64 {
            sys.write(pid, VirtAddr(0x10000 + i * 4096), (i % 251) as u8);
        }
        bench("scan_visit_100_pages_ksm", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
    }
    {
        let mut m = Machine::new(MachineConfig::test_small());
        bench("frame_alloc_with_metadata", || {
            let f = m.alloc_frame(PageType::Anon).expect("frame");
            black_box(f);
            m.put_frame(f).expect("put");
        });
    }
}

fn main() {
    bench_trees();
    bench_allocators();
    bench_llc();
    bench_fault_path();
}
