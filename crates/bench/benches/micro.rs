//! Microbenchmarks of the core data structures and hot paths: the content
//! trees (KSM's red-black tree, WPF's AVL tree), the scan-path tree lookup
//! (hash-prefiltered find + insert, the shape every engine runs per page),
//! the allocators (buddy / linear / randomized pool), LLC accesses, the
//! end-to-end fault path, and full engine scans (KSM / WPF / VUsion).
//!
//! Plain self-timed harness (no external benchmark framework): each case
//! runs warm-up passes, then records per-sample wall-clock times and
//! reports min / mean / median per iteration.
//!
//! Besides printing a table, the harness writes `BENCH_micro.json` at the
//! repo root — the first entry in this repo's perf-trajectory files. The
//! previous run's numbers are preserved under a `"baseline"` key, so the
//! file always shows the current numbers next to the pre-optimization
//! ones and a reviewer can compute the speedup from one artifact.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use vusion_cache::{Llc, LlcConfig};
use vusion_core::{ContentAvlTree, ContentRbTree};
use vusion_kernel::{Machine, MachineConfig};
use vusion_mem::{
    BuddyAllocator, FrameAllocator, FrameId, LinearAllocator, PageType, PhysAddr, PhysMemory,
    RandomPool, VirtAddr,
};
use vusion_mmu::{Protection, Vma};

const SAMPLES: u32 = 20;
const WARMUP: u32 = 3;

/// One bench case's timing summary, in nanoseconds per iteration.
struct BenchResult {
    name: &'static str,
    min_ns: u64,
    mean_ns: u64,
    median_ns: u64,
}

fn bench(out: &mut Vec<BenchResult>, name: &'static str, mut f: impl FnMut()) {
    for _ in 0..WARMUP {
        f();
    }
    let mut times = Vec::with_capacity(SAMPLES as usize);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as u64);
    }
    times.sort_unstable();
    let min_ns = times[0];
    let mean_ns = times.iter().sum::<u64>() / u64::from(SAMPLES);
    let mid = times.len() / 2;
    let median_ns = if times.len() % 2 == 0 {
        (times[mid - 1] + times[mid]) / 2
    } else {
        times[mid]
    };
    println!(
        "{name:<34} min {:>12} ns  mean {:>12} ns  median {:>12} ns  ({SAMPLES} samples)",
        min_ns, mean_ns, median_ns
    );
    out.push(BenchResult {
        name,
        min_ns,
        mean_ns,
        median_ns,
    });
}

/// Pages 0..4096 seeded so every page is unique in its first word.
fn seeded_mem() -> PhysMemory {
    let mut mem = PhysMemory::new(4096);
    for f in 0..4096u64 {
        mem.write_u64(PhysAddr(f * 4096), f.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    mem
}

fn bench_trees(out: &mut Vec<BenchResult>) {
    // Content comparisons against real page bytes.
    let mem = seeded_mem();
    bench(out, "rbtree_insert_find_1k", || {
        let mut t = ContentRbTree::new();
        for f in 0..1024u64 {
            t.insert(FrameId(f), f, |a, b| mem.compare_pages(a, b));
        }
        for f in 0..1024u64 {
            black_box(t.find(FrameId(f), |a, b| mem.compare_pages(a, b)));
        }
    });
    bench(out, "avl_insert_find_1k", || {
        let mut t = ContentAvlTree::new();
        for f in 0..1024u64 {
            t.insert(FrameId(f), f, |a, b| mem.compare_pages(a, b));
        }
        for f in 0..1024u64 {
            black_box(t.find(FrameId(f), |a, b| mem.compare_pages(a, b)));
        }
    });
    // The lookup shape the engines actually run per scanned page: probe
    // the frame's content hash against a hash index of the tree, descend
    // only on a possible match, insert on a miss. Frames 1024..2048 are
    // pure probes (absent from the tree), like scanning pages that match
    // nothing.
    bench(out, "rbtree_scanpath_insert_find_1k", || {
        let mut t = ContentRbTree::new();
        let mut index: BTreeMap<u64, u32> = BTreeMap::new();
        for f in 0..1024u64 {
            let h = mem.hash_page(FrameId(f));
            let hit = index.contains_key(&h)
                && t.find(FrameId(f), |a, b| mem.compare_pages(a, b)).is_some();
            if !hit {
                t.insert(FrameId(f), f, |a, b| mem.compare_pages(a, b));
                *index.entry(h).or_insert(0) += 1;
            }
        }
        for f in 1024..2048u64 {
            let h = mem.hash_page(FrameId(f));
            if index.contains_key(&h) {
                black_box(t.find(FrameId(f), |a, b| mem.compare_pages(a, b)));
            }
        }
        black_box(&t);
    });
    bench(out, "avl_scanpath_insert_find_1k", || {
        let mut t = ContentAvlTree::new();
        let mut index: BTreeMap<u64, u32> = BTreeMap::new();
        for f in 0..1024u64 {
            let h = mem.hash_page(FrameId(f));
            let hit = index.contains_key(&h)
                && t.find(FrameId(f), |a, b| mem.compare_pages(a, b)).is_some();
            if !hit {
                t.insert(FrameId(f), f, |a, b| mem.compare_pages(a, b));
                *index.entry(h).or_insert(0) += 1;
            }
        }
        for f in 1024..2048u64 {
            let h = mem.hash_page(FrameId(f));
            if index.contains_key(&h) {
                black_box(t.find(FrameId(f), |a, b| mem.compare_pages(a, b)));
            }
        }
        black_box(&t);
    });
}

fn bench_page_ops(out: &mut Vec<BenchResult>) {
    let mem = seeded_mem();
    bench(out, "hash_page_512_frames", || {
        let mut acc = 0u64;
        for f in 0..512u64 {
            acc ^= mem.hash_page(FrameId(f));
        }
        black_box(acc);
    });
    bench(out, "is_zero_512_frames", || {
        let mut n = 0usize;
        for f in 0..512u64 {
            n += usize::from(mem.is_zero(FrameId(f)));
        }
        black_box(n);
    });
    bench(out, "compare_pages_512_pairs", || {
        let mut n = 0usize;
        for f in 0..512u64 {
            n += (mem.compare_pages(FrameId(f), FrameId(f + 512)) == std::cmp::Ordering::Less)
                as usize;
        }
        black_box(n);
    });
}

fn bench_allocators(out: &mut Vec<BenchResult>) {
    bench(out, "buddy_alloc_free_1k", || {
        let mut a = BuddyAllocator::new(FrameId(0), 2048);
        let frames: Vec<_> = (0..1024).map(|_| a.alloc().expect("frame")).collect();
        for f in frames {
            a.free(f).expect("free");
        }
    });
    bench(out, "linear_reserve_release_256", || {
        let mut a = LinearAllocator::new(FrameId(0), 4096);
        let batch = a.reserve_batch(256, |_| false);
        for f in batch {
            a.free(f).expect("free");
        }
    });
    let mut buddy = BuddyAllocator::new(FrameId(0), 8192);
    let mut pool = RandomPool::new(2048, &mut buddy, 9);
    bench(out, "random_pool_cycle_1k", || {
        for _ in 0..1024 {
            let f = pool.alloc_random(&mut buddy).expect("frame");
            pool.free_random(f, &mut buddy).expect("free");
        }
    });
}

fn bench_llc(out: &mut Vec<BenchResult>) {
    let mut llc = Llc::new(LlcConfig::xeon_e3_1240_v5());
    bench(out, "llc_access_stream_4k_lines", || {
        for i in 0..4096u64 {
            black_box(llc.access(PhysAddr(i * 64)));
        }
    });
}

fn bench_fault_path(out: &mut Vec<BenchResult>) {
    bench(out, "demand_zero_fault_and_map", || {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 128, Protection::rw()));
        for i in 0..128u64 {
            let va = VirtAddr(0x10000 + i * 4096);
            let f = m.read(pid, va).expect_err("faults");
            m.default_fault(&f);
            black_box(m.read(pid, va).expect("mapped"));
        }
    });
    {
        let mut m = Machine::new(MachineConfig::test_small());
        bench(out, "frame_alloc_with_metadata", || {
            let f = m.alloc_frame(PageType::Anon).expect("frame");
            black_box(f);
            m.put_frame(f).expect("put");
        });
    }
}

/// Times the three engine scans, then — with timing done — enables the
/// observability layer and takes one instrumented scan per engine so the
/// JSON artifact carries a metrics snapshot next to the timings. Tracing
/// is off while the samples are collected, preserving the perf gate.
fn bench_engine_scans(out: &mut Vec<BenchResult>) -> Vec<(&'static str, String)> {
    use vusion_core::{Ksm, KsmConfig, VUsion, VUsionConfig, Wpf, WpfConfig};
    use vusion_kernel::{FusionPolicy, System};
    let mut metrics = Vec::new();
    {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(0x10000), 512);
        let mut sys = System::new(m, Ksm::new(KsmConfig::default()));
        // Unique pages: every visited page stays a candidate (checksum +
        // unstable-tree traffic each round) instead of settling into the
        // merged fast path, so the bench measures recurring per-page work.
        for i in 0..512u64 {
            let byte_off = i / 251;
            let value = (i % 251) as u8 + 1;
            sys.write(pid, VirtAddr(0x10000 + i * 4096 + byte_off), value);
        }
        bench(out, "scan_visit_100_pages_ksm", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
        // Same workload at 4 shard threads: the steady-state scan skips
        // every clean page and its pre-hash list is empty, so the knob
        // must be free — the artifact records both medians side by side.
        sys.policy.set_scan_threads(4);
        bench(out, "scan_visit_100_pages_ksm_t4", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
        sys.machine.enable_tracing();
        black_box(sys.policy.scan(&mut sys.machine));
        metrics.push(("ksm", sys.metrics_snapshot().to_json()));
    }
    {
        // Unique pages so a pass hashes all 512 candidates and merges none.
        let cfg = MachineConfig::test_small().with_reserved_top(256);
        let mut m = Machine::new(cfg);
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        let wpf = Wpf::new(&m, WpfConfig::default()).expect("reserved region");
        let mut sys = System::new(m, wpf);
        for i in 0..512u64 {
            let byte_off = i / 251;
            let value = (i % 251) as u8 + 1;
            sys.write(pid, VirtAddr(0x10000 + i * 4096 + byte_off), value);
        }
        bench(out, "scan_full_pass_wpf_512", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
        // 4-thread twin; the all-clean fast path never reaches the
        // sharded stage, so this measures the knob's overhead-free case.
        sys.policy.set_scan_threads(4);
        bench(out, "scan_full_pass_wpf_512_t4", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
        sys.machine.enable_tracing();
        black_box(sys.policy.scan(&mut sys.machine));
        metrics.push(("wpf", sys.metrics_snapshot().to_json()));
    }
    {
        // Re-randomization ablated so the bench isolates the scan itself
        // (candidate enumeration + per-page state checks), not the
        // round-boundary page copies.
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(0x10000), 512);
        let vusion = VUsion::new(
            &mut m,
            VUsionConfig {
                pool_frames: 1024,
                ablate_rerandomize: true,
                ..Default::default()
            },
        );
        let mut sys = System::new(m, vusion);
        for i in 0..512u64 {
            let byte_off = i / 251;
            let value = (i % 251) as u8 + 1;
            sys.write(pid, VirtAddr(0x10000 + i * 4096 + byte_off), value);
        }
        // Let the engine reach steady state (all candidates fake-merged)
        // before timing, so samples measure the recurring scan cost.
        for _ in 0..8 {
            sys.policy.scan(&mut sys.machine);
        }
        bench(out, "scan_visit_100_pages_vusion", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
        sys.policy.set_scan_threads(4);
        bench(out, "scan_visit_100_pages_vusion_t4", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
        sys.machine.enable_tracing();
        black_box(sys.policy.scan(&mut sys.machine));
        metrics.push(("vusion", sys.metrics_snapshot().to_json()));
    }
    metrics
}

/// Thread-scaling curves for the sharded hashing stage: every iteration
/// dirties all 512 candidate pages (one byte each, content unchanged —
/// the write bumps the frame's generation, so every memoized hash goes
/// cold), then runs one scan that must re-hash the lot. The workload is
/// byte-identical across the curve; only the `scan_threads` knob moves,
/// so the artifact records how the parallel pre-hash scales on the host
/// it ran on. VUsion is omitted: its steady state write-protects the
/// candidates, so a dirtying workload would measure the CoW fault path,
/// not the hashing stage (which is the same shared code for all three).
fn bench_scan_scaling(out: &mut Vec<BenchResult>) {
    use vusion_core::{Ksm, KsmConfig, Wpf, WpfConfig};
    use vusion_kernel::{FusionPolicy, System};
    // Re-writing page i's distinguishing value at a fixed offset keeps
    // the 512 contents unique (no merges ever happen), while still
    // invalidating the hash memo every iteration.
    fn dirty_all(m: &mut Machine, pid: vusion_kernel::Pid) {
        for i in 0..512u64 {
            let va = VirtAddr(0x10000 + i * 4096 + 2048);
            m.write(pid, va, (i % 251) as u8 + 1).expect("mapped");
        }
    }
    for (threads, name) in [
        (1usize, "scan_cold_visit_512_ksm_t1"),
        (2, "scan_cold_visit_512_ksm_t2"),
        (4, "scan_cold_visit_512_ksm_t4"),
    ] {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(0x10000), 512);
        let ksm = Ksm::new(KsmConfig {
            pages_per_scan: 512,
            ..Default::default()
        });
        let mut sys = System::new(m, ksm);
        for i in 0..512u64 {
            let byte_off = i / 251;
            let value = (i % 251) as u8 + 1;
            sys.write(pid, VirtAddr(0x10000 + i * 4096 + byte_off), value);
        }
        sys.policy.set_scan_threads(threads);
        bench(out, name, || {
            dirty_all(&mut sys.machine, pid);
            black_box(sys.policy.scan(&mut sys.machine));
        });
    }
    for (threads, name) in [
        (1usize, "scan_cold_pass_512_wpf_t1"),
        (2, "scan_cold_pass_512_wpf_t2"),
        (4, "scan_cold_pass_512_wpf_t4"),
    ] {
        let cfg = MachineConfig::test_small().with_reserved_top(256);
        let mut m = Machine::new(cfg);
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        let wpf = Wpf::new(&m, WpfConfig::default()).expect("reserved region");
        let mut sys = System::new(m, wpf);
        for i in 0..512u64 {
            let byte_off = i / 251;
            let value = (i % 251) as u8 + 1;
            sys.write(pid, VirtAddr(0x10000 + i * 4096 + byte_off), value);
        }
        sys.policy.set_scan_threads(threads);
        bench(out, name, || {
            dirty_all(&mut sys.machine, pid);
            black_box(sys.policy.scan(&mut sys.machine));
        });
    }
}

/// Per-wake cost of a governor-throttled scan: the same 512-page
/// workloads as the full-scan benches, but the engine runs under a hard
/// per-wake page budget ([`vusion_kernel::FusionPolicy::set_scan_budget`])
/// — each wake visits or hashes only 64 pages and, for WPF, parks a
/// resumable pass cursor for the next wake. Medians land next to the
/// unthrottled `scan_*` rows in the artifact, so a reviewer can read the
/// budget's per-wake saving straight off one file.
fn bench_scan_throttled(out: &mut Vec<BenchResult>) {
    use vusion_core::{Ksm, KsmConfig, VUsion, VUsionConfig, Wpf, WpfConfig};
    use vusion_kernel::{FusionPolicy, System};
    {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(0x10000), 512);
        let ksm = Ksm::new(KsmConfig {
            pages_per_scan: 512,
            ..Default::default()
        });
        let mut sys = System::new(m, ksm);
        for i in 0..512u64 {
            let byte_off = i / 251;
            let value = (i % 251) as u8 + 1;
            sys.write(pid, VirtAddr(0x10000 + i * 4096 + byte_off), value);
        }
        sys.policy.set_scan_budget(Some(64));
        bench(out, "scan_pass_throttled_ksm_b64", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
    }
    {
        // Cold pass under budget: every iteration dirties all 512 pages
        // (hash memos go cold), the budgeted wake hashes 64 of them and
        // suspends; a full pass completes every 8 wakes.
        let cfg = MachineConfig::test_small().with_reserved_top(256);
        let mut m = Machine::new(cfg);
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        let wpf = Wpf::new(&m, WpfConfig::default()).expect("reserved region");
        let mut sys = System::new(m, wpf);
        for i in 0..512u64 {
            let byte_off = i / 251;
            let value = (i % 251) as u8 + 1;
            sys.write(pid, VirtAddr(0x10000 + i * 4096 + byte_off), value);
        }
        sys.policy.set_scan_budget(Some(64));
        bench(out, "scan_pass_throttled_wpf_b64", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
    }
    {
        let mut m = Machine::new(MachineConfig::test_small());
        let pid = m.spawn("t").expect("spawn");
        m.mmap(pid, Vma::anon(VirtAddr(0x10000), 512, Protection::rw()));
        m.madvise_mergeable(pid, VirtAddr(0x10000), 512);
        let vusion = VUsion::new(
            &mut m,
            VUsionConfig {
                pool_frames: 1024,
                ablate_rerandomize: true,
                ..Default::default()
            },
        );
        let mut sys = System::new(m, vusion);
        for i in 0..512u64 {
            let byte_off = i / 251;
            let value = (i % 251) as u8 + 1;
            sys.write(pid, VirtAddr(0x10000 + i * 4096 + byte_off), value);
        }
        for _ in 0..8 {
            sys.policy.scan(&mut sys.machine);
        }
        sys.policy.set_scan_budget(Some(64));
        bench(out, "scan_pass_throttled_vusion_b64", || {
            black_box(sys.policy.scan(&mut sys.machine));
        });
    }
}

/// Full-workspace static-contract pass (DESIGN.md §11): lex, parse, and
/// cross-link every workspace source file, then run all rule families —
/// including the workspace-wide snapshot/journal/shard fixpoints over
/// the cross-file call graph. The row keeps the analyzer honest as the
/// tree grows: bench_gate holds `vlint_*` benches to a generous absolute
/// wall-time ceiling instead of the scan_* ratio gate (the linter's cost
/// scales with tree size, so ratio-vs-baseline would flag every PR that
/// adds code).
fn bench_vlint(out: &mut Vec<BenchResult>) {
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    bench(out, "vlint_check_workspace", || {
        let findings = vlint::scan_root(root).expect("workspace sources readable");
        black_box(findings.len());
    });
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a git checkout.
fn git_rev(repo_root: &str) -> String {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(repo_root)
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".to_string(),
    }
}

/// Extracts the previous run's `"baseline"` object (balanced-brace scan —
/// fine here because bench names and git revs never contain braces). The
/// very first post-change run instead adopts the entire previous file as
/// the baseline, which is how the pre-optimization numbers get pinned.
fn carry_baseline(old: &str) -> Option<String> {
    let key = "\"baseline\":";
    if let Some(pos) = old.find(key) {
        let rest = old[pos + key.len()..].trim_start();
        if rest.starts_with('{') {
            let mut depth = 0usize;
            for (i, c) in rest.char_indices() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(rest[..=i].to_string());
                        }
                    }
                    _ => {}
                }
            }
        }
        // `"baseline": null` — previous run was itself the baseline run.
    }
    Some(old.trim().to_string())
}

fn render_json(
    rev: &str,
    results: &[BenchResult],
    metrics: &[(&'static str, String)],
    baseline: Option<&str>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"vusion-bench-micro/v1\",\n");
    s.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    s.push_str(&format!("  \"samples\": {SAMPLES},\n"));
    s.push_str("  \"unit\": \"ns\",\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"samples\": {}}}{}\n",
            r.name, r.median_ns, r.min_ns, r.mean_ns, r.median_ns, SAMPLES, comma
        ));
    }
    s.push_str("  ],\n");
    // One instrumented scan per engine: the observability layer's metrics
    // snapshot, embedded verbatim (it is already a JSON object).
    s.push_str("  \"metrics\": {");
    for (i, (engine, snap)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        s.push_str(&format!("\n    \"{engine}\": {snap}{comma}"));
    }
    s.push_str("\n  },\n");
    match baseline {
        Some(b) => {
            s.push_str("  \"baseline\": ");
            // Re-indent is cosmetic only; embed verbatim to stay valid.
            s.push_str(b);
            s.push('\n');
        }
        None => s.push_str("  \"baseline\": null\n"),
    }
    s.push_str("}\n");
    s
}

fn main() {
    let mut results = Vec::new();
    bench_trees(&mut results);
    bench_page_ops(&mut results);
    bench_allocators(&mut results);
    bench_llc(&mut results);
    bench_fault_path(&mut results);
    let metrics = bench_engine_scans(&mut results);
    bench_scan_scaling(&mut results);
    bench_scan_throttled(&mut results);
    bench_vlint(&mut results);

    // Zero-cost-when-off: every scan bench above runs without a governor
    // and without the side-channel surface recorder, so the instrumented
    // metrics snapshots must carry no pressure.* or surface.* keys — a
    // disabled subsystem leaves no trace in any artifact.
    for (engine, snap) in &metrics {
        assert!(
            !snap.contains("pressure."),
            "{engine}: ungoverned bench metrics contain pressure.* keys"
        );
        assert!(
            !snap.contains("surface."),
            "{engine}: unsurfaced bench metrics contain surface.* keys"
        );
    }

    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{repo_root}/BENCH_micro.json");
    let baseline = std::fs::read_to_string(&path)
        .ok()
        .and_then(|old| carry_baseline(&old));
    let json = render_json(&git_rev(repo_root), &results, &metrics, baseline.as_deref());
    std::fs::write(&path, json).expect("write BENCH_micro.json");
    println!("wrote {path}");
}
