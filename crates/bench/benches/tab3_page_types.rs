//! Table 3: contribution of guest page types to page fusion.
//!
//! Expected shape: the page cache and the guest buddy allocator's free
//! pages dominate (paper: ≈52% and ≈38%), with kernel pages and the rest
//! making up the remainder — i.e. "most benefits of page fusion come from
//! idle pages in the system".

use vusion_bench::{boot_fleet, Report};
use vusion_core::{EngineKind, Ksm, KsmConfig, TagCounts, VUsion, VUsionConfig};
use vusion_kernel::{Machine, MachineConfig, System};

fn tags_for(kind: EngineKind) -> TagCounts {
    // Build engines directly so their tag counters are reachable.
    match kind {
        EngineKind::Ksm => {
            let m = Machine::new(MachineConfig::guest_2g_scaled());
            let mut sys = System::new(m, Ksm::new(KsmConfig::default()));
            boot_fleet(&mut sys, 4, 0);
            sys.force_scans(400);
            sys.policy.tag_counts()
        }
        EngineKind::VUsion | EngineKind::VUsionThp => {
            let mut m = Machine::new(if kind == EngineKind::VUsionThp {
                MachineConfig::guest_2g_scaled().with_thp()
            } else {
                MachineConfig::guest_2g_scaled()
            });
            let cfg = VUsionConfig {
                thp_enhancements: kind == EngineKind::VUsionThp,
                ..Default::default()
            };
            let policy = VUsion::new(&mut m, cfg);
            let mut sys = System::new(m, policy);
            boot_fleet(&mut sys, 4, 0);
            sys.force_scans(400);
            sys.policy.tag_counts()
        }
        _ => unreachable!("Table 3 covers KSM and VUsion configurations"),
    }
}

fn main() {
    let mut rep = Report::new("Table 3", "Contribution of page types to page fusion (%)");
    rep.text(format!(
        "{:<12} {:>12} {:>8} {:>8} {:>6}",
        "engine", "page cache", "buddy", "kernel", "rest"
    ));
    for kind in [EngineKind::Ksm, EngineKind::VUsion, EngineKind::VUsionThp] {
        let t = tags_for(kind);
        let (pc, buddy, kernel, rest) = t.percentages();
        rep.raw_row(
            &format!(
                "{:<12} {:>11.1}% {:>7.1}% {:>7.1}% {:>5.1}%",
                kind.label(),
                pc,
                buddy,
                kernel,
                rest
            ),
            kind.label(),
            &[
                ("page_cache_pct", format!("{pc:.1}")),
                ("buddy_pct", format!("{buddy:.1}")),
                ("kernel_pct", format!("{kernel:.1}")),
                ("rest_pct", format!("{rest:.1}")),
            ],
        );
        // Shape: page cache + guest-buddy dominate.
        assert!(
            pc + buddy > 60.0,
            "{kind:?}: idle-page sources must dominate fusion"
        );
    }
    rep.text(
        "paper: KSM 51.8/38.4/6.9/2.9, VUsion 51.2/38.6/6.6/3.6, VUsion THP 50.4/32.8/6.3/10.5",
    );
    rep.finish();
}
