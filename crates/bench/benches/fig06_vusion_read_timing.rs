//! Figure 6 and §9.1 "Enforcing SB": frequency distribution of timing
//! 1,000 reads under VUsion, plus the Kolmogorov–Smirnov test.
//!
//! Shared and unshared pages alike take the copy-on-access path, so the
//! distribution has a single peak and the KS test does not reject the
//! same-distribution hypothesis (the paper reports p = 0.36).

use vusion_attacks::cow_timing::{self, CowTimingParams};
use vusion_bench::Report;
use vusion_core::EngineKind;
use vusion_stats::Histogram;

fn main() {
    let mut rep = Report::new("Figure 6", "Freq. dist. of timing 1,000 reads in VUsion");
    let params = CowTimingParams {
        dup_probes: 500,
        unique_probes: 500,
        probe_with_writes: false,
    };
    let o = cow_timing::run(EngineKind::VUsion, params);
    let mut all = o.dup_times.clone();
    all.extend_from_slice(&o.unique_times);
    let h = Histogram::from_sample(&all, 24);
    rep.text("time_ns count   (1,000 reads: 500 shared, 500 unshared — indistinguishable)");
    for (i, (center, count)) in h.rows().into_iter().enumerate() {
        rep.raw_row(
            &format!("{center:>9.0} {count}"),
            &format!("bin_{i}"),
            &[
                ("time_ns", format!("{center:.0}")),
                ("count", count.to_string()),
            ],
        );
    }
    // Coarse bins: the copy-on-access path has fine structure from
    // discrete cache outcomes, but no second mode anywhere near the
    // plain-store regime of Figure 5.
    let peaks = h.peak_count(0.20);
    rep.text(format!("peaks detected: {peaks} (paper: one)"));
    rep.text(format!(
        "KS test shared-vs-unshared: D = {:.4}, p = {:.3} (paper: p = 0.36; same distribution)",
        o.ks.statistic, o.ks.p_value
    ));
    rep.finish();
    assert_eq!(peaks, 1, "VUsion read timing must be unimodal");
    assert!(
        o.ks.same_distribution(0.05),
        "SB: distributions must not separate"
    );
}
