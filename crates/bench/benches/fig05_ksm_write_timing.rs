//! Figure 5: frequency distribution of timing 1,000 writes under KSM.
//!
//! The paper's histogram has two distinct peaks — plain stores to unshared
//! pages and copy-on-write faults on shared pages — which *is* the side
//! channel. We print the same histogram (bin center, count) and verify the
//! bimodality.

use vusion_attacks::cow_timing::{self, CowTimingParams};
use vusion_bench::Report;
use vusion_core::EngineKind;
use vusion_stats::Histogram;

fn main() {
    let mut rep = Report::new("Figure 5", "Freq. dist. of timing 1,000 writes in KSM");
    let params = CowTimingParams {
        dup_probes: 500,
        unique_probes: 500,
        probe_with_writes: true,
    };
    let o = cow_timing::run(EngineKind::Ksm, params);
    let mut all = o.dup_times.clone();
    all.extend_from_slice(&o.unique_times);
    let h = Histogram::from_sample(&all, 60);
    rep.text("time_ns count   (1,000 writes: 500 to shared, 500 to unshared pages)");
    for (i, (center, count)) in h.rows().into_iter().enumerate() {
        rep.raw_row(
            &format!("{center:>9.0} {count}"),
            &format!("bin_{i}"),
            &[
                ("time_ns", format!("{center:.0}")),
                ("count", count.to_string()),
            ],
        );
    }
    let peaks = h.peak_count(0.10);
    rep.text(format!(
        "peaks detected: {peaks} (paper: two distinct peaks — the CoW side channel)"
    ));
    rep.text(format!(
        "KS p-value shared-vs-unshared: {:.3e} (distinguishable)",
        o.ks.p_value
    ));
    rep.finish();
    assert!(peaks >= 2, "KSM write timing must be bimodal");
    assert!(!o.ks.same_distribution(0.05));
}
