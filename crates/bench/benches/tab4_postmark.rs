//! Table 4: Postmark transactions per second (mean/min/max of 3 runs).
//!
//! Expected shape: KSM ≈ −1.5%, VUsion ≈ −2.9%, VUsion THP ≈ baseline —
//! file-system-bound work barely notices secure fusion.

use vusion_bench::{boot_fleet, engine_cell, Report};
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_stats::Summary;
use vusion_workloads::postmark::PostmarkBench;

fn main() {
    let mut report = Report::new("Table 4", "Performance of the Postmark benchmark (tx/s)");
    report.text(format!(
        "{:<12} {:>10} {:>10} {:>10}",
        "engine", "mean", "min", "max"
    ));
    let mut baseline = None;
    for kind in EngineKind::evaluation_set() {
        let mut runs = Vec::new();
        for rep in 0..3u64 {
            let base = if kind == EngineKind::VUsionThp {
                MachineConfig::guest_2g_scaled().with_thp()
            } else {
                MachineConfig::guest_2g_scaled()
            }
            .with_seed(0x5eed + rep);
            let mut sys = kind.build_system(base);
            let vms = boot_fleet(&mut sys, 4, 0);
            let bench = PostmarkBench {
                spool_pages: 1024,
                transactions: 1200,
            };
            bench.setup(&mut sys, &vms[0]);
            // Warm the spool with the scanner interleaved (the scanner
            // runs alongside the workload in deployment), then measure.
            let warm = PostmarkBench {
                spool_pages: 1024,
                transactions: 150,
            };
            for r in 0..8 {
                warm.run(&mut sys, &vms[0], 99 + rep * 10 + r);
                sys.force_scans(6); // Slow scanner relative to tx rate.
            }
            runs.push(bench.run(&mut sys, &vms[0], 17 + rep).tx_per_s);
        }
        let s = Summary::of(&runs);
        report.raw_row(
            &format!(
                "{} {:>10.1} {:>10.1} {:>10.1}",
                engine_cell(kind),
                s.mean,
                s.min,
                s.max
            ),
            kind.label(),
            &[
                ("mean_tx_s", format!("{:.1}", s.mean)),
                ("min_tx_s", format!("{:.1}", s.min)),
                ("max_tx_s", format!("{:.1}", s.max)),
            ],
        );
        let b = *baseline.get_or_insert(s.mean);
        assert!(s.mean > b * 0.85, "{kind:?} fell out of the Table 4 band");
    }
    report.text(
        "paper: No-dedup 3237.3, KSM 3221.7 (-0.5%), VUsion 3178.7 (-1.8%), VUsion THP 3246.3",
    );
    report.finish();
}
