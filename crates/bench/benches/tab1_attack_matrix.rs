//! Table 1: the attack × mitigation matrix.
//!
//! Runs all six attacks against KSM, WPF and VUsion and prints the grid.
//! Expected shape: every attack defeats at least one insecure baseline;
//! none defeats VUsion.

use vusion_attacks::attack_matrix;
use vusion_bench::Report;
use vusion_core::EngineKind;

fn main() {
    let mut rep = Report::new(
        "Table 1",
        "Attacks against page fusion and their mitigations",
    );
    let engines = [EngineKind::Ksm, EngineKind::Wpf, EngineKind::VUsion];
    let rows = attack_matrix(&engines);
    rep.text(format!(
        "{:<34} {:<8} {:<10} {:>6} {:>6} {:>8}",
        "Attack", "Abuses", "Mitigation", "KSM", "WPF", "VUsion"
    ));
    let attacks: Vec<&str> = {
        let mut seen = Vec::new();
        for r in &rows {
            if !seen.contains(&r.attack) {
                seen.push(r.attack);
            }
        }
        seen
    };
    for attack in &attacks {
        let cell = |kind: EngineKind| {
            rows.iter()
                .find(|r| r.attack == *attack && r.engine == kind)
                .map(|r| if r.success { "BROKEN" } else { "safe" })
                .unwrap_or("-")
        };
        let meta = rows
            .iter()
            .find(|r| r.attack == *attack)
            .expect("row exists");
        rep.raw_row(
            &format!(
                "{:<34} {:<8} {:<10} {:>6} {:>6} {:>8}",
                attack,
                meta.mechanism,
                meta.mitigation,
                cell(EngineKind::Ksm),
                cell(EngineKind::Wpf),
                cell(EngineKind::VUsion)
            ),
            attack,
            &[
                ("abuses", meta.mechanism.to_string()),
                ("mitigation", meta.mitigation.to_string()),
                ("ksm", cell(EngineKind::Ksm).to_string()),
                ("wpf", cell(EngineKind::Wpf).to_string()),
                ("vusion", cell(EngineKind::VUsion).to_string()),
            ],
        );
    }
    // The paper's claim, enforced.
    for r in rows.iter().filter(|r| r.engine == EngineKind::VUsion) {
        assert!(!r.success, "VUsion must stop {}", r.attack);
    }
    for attack in &attacks {
        assert!(
            rows.iter()
                .any(|r| r.attack == *attack && r.engine != EngineKind::VUsion && r.success),
            "{attack} must break a baseline"
        );
    }
    rep.text("\nAll attacks stopped by VUsion; every attack breaks an insecure baseline.");
    rep.finish();
}
