//! Figure 3: deterministic physical-memory reuse across WPF fusion passes.
//!
//! The paper shows a scatter of fused-page physical frames at the end of
//! guest memory, nearly identical between two fusion passes. We reproduce
//! the series: frames assigned in pass 1, frames assigned in pass 2 after
//! the attacker releases everything, and the reuse rate (paper:
//! "near-perfect").

use vusion_bench::Report;
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_mem::{VirtAddr, PAGE_SIZE};
use vusion_mmu::{Protection, Vma};
use vusion_workloads::images::labeled_page;

fn main() {
    let mut rep = Report::new(
        "Figure 3",
        "WPF physical memory reuse between fusion passes",
    );
    const PAIRS: u64 = 32;
    let mut sys = EngineKind::Wpf.build_system(MachineConfig::guest_2g_scaled());
    let pid = sys.machine.spawn("attacker").expect("spawn");
    sys.machine.mmap(
        pid,
        Vma::anon(VirtAddr(0x1000_0000), PAIRS * 2, Protection::rw()),
    );
    // Pass 1: pair-wise duplicates.
    for g in 0..PAIRS {
        for c in 0..2u64 {
            sys.write_page(
                pid,
                VirtAddr(0x1000_0000 + (2 * g + c) * PAGE_SIZE),
                &labeled_page(0xf1_0000 + g),
            );
        }
    }
    sys.force_scans(4);
    let pass1: Vec<u64> = (0..PAIRS)
        .filter_map(|g| {
            sys.machine
                .translate_quiet(pid, VirtAddr(0x1000_0000 + 2 * g * PAGE_SIZE))
        })
        .map(|pa| pa.frame().0)
        .collect();
    // Release everything (CoW) and run another pass over fresh duplicates.
    for p in 0..PAIRS * 2 {
        sys.write(pid, VirtAddr(0x1000_0000 + p * PAGE_SIZE), p as u8);
    }
    for g in 0..PAIRS {
        for c in 0..2u64 {
            sys.write_page(
                pid,
                VirtAddr(0x1000_0000 + (2 * g + c) * PAGE_SIZE),
                &labeled_page(0xf2_0000 + g),
            );
        }
    }
    sys.force_scans(4);
    let pass2: Vec<u64> = (0..PAIRS)
        .filter_map(|g| {
            sys.machine
                .translate_quiet(pid, VirtAddr(0x1000_0000 + 2 * g * PAGE_SIZE))
        })
        .map(|pa| pa.frame().0)
        .collect();
    let set1: std::collections::BTreeSet<u64> = pass1.iter().copied().collect();
    let reused = pass2.iter().filter(|f| set1.contains(f)).count();
    let total_frames = sys.machine.config().frames;
    rep.text(format!(
        "machine frames: {total_frames} (fused pages live at the end of memory)"
    ));
    rep.text(format!("pass 1 frames: {pass1:?}"));
    rep.text(format!("pass 2 frames: {pass2:?}"));
    rep.row(
        "reuse",
        &[
            ("reused", format!("{reused}/{}", pass2.len())),
            (
                "rate",
                format!("{:.1}%", reused as f64 * 100.0 / pass2.len() as f64),
            ),
            ("paper", "near-perfect reuse at end of memory".to_string()),
        ],
    );
    rep.finish();
    assert!(
        reused * 10 >= pass2.len() * 9,
        "expected near-perfect reuse"
    );
}
