//! Figure 9: number of huge pages over the Apache benchmark's runtime.
//!
//! Expected shape: KSM and plain VUsion erode the worker THPs (splits on
//! merge / on consideration); VUsion with THP enhancements conserves the
//! working set's huge pages.

use vusion_bench::{boot_fleet, Report};
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_rng::rngs::StdRng;
use vusion_rng::SeedableRng;
use vusion_workloads::apache::ApacheServer;

fn series(kind: EngineKind) -> Vec<(f64, usize)> {
    let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
    let vms = boot_fleet(&mut sys, 4, 0);
    let server = ApacheServer::default();
    let mut inst = server.start(&mut sys, &vms[0]);
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = Vec::new();
    for step in 0..12 {
        for _ in 0..150 {
            inst.serve(&mut sys, &mut rng);
        }
        // Brief lull between bursts: the scanner (and khugepaged, where
        // attached) runs, but the server's working set stays recent — as in
        // the paper's continuously loaded 500 s run.
        sys.idle(300_000_000);
        out.push((
            step as f64 * 0.3,
            sys.machine.count_huge_mappings(vms[0].pid),
        ));
    }
    out
}

fn main() {
    let mut rep = Report::new("Figure 9", "Conserving THPs during the Apache benchmark");
    let kinds = [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ];
    let all: Vec<(EngineKind, Vec<(f64, usize)>)> = kinds.iter().map(|&k| (k, series(k))).collect();
    let mut head = format!("{:<8}", "t(s)");
    for (k, _) in &all {
        head.push_str(&format!("{:>12}", k.label()));
    }
    rep.text(head);
    let steps = all[0].1.len();
    for i in 0..steps {
        let mut line = format!("{:<8.0}", all[0].1[i].0);
        let mut cells = Vec::new();
        for (k, s) in &all {
            line.push_str(&format!("{:>12}", s[i].1));
            cells.push((k.label(), s[i].1.to_string()));
        }
        rep.raw_row(&line, &format!("t_{:.1}", all[0].1[i].0), &cells);
    }
    let end = |k: EngineKind| {
        all.iter()
            .find(|(kk, _)| *kk == k)
            .expect("ran")
            .1
            .last()
            .expect("steps")
            .1
    };
    rep.text(format!(
        "\nfinal huge pages: No-dedup {}, KSM {}, VUsion {}, VUsion THP {}",
        end(EngineKind::NoFusion),
        end(EngineKind::Ksm),
        end(EngineKind::VUsion),
        end(EngineKind::VUsionThp)
    ));
    rep.text("paper shape: VUsion-THP conserves working-set THPs; KSM and plain VUsion erode them");
    rep.finish();
    assert!(
        end(EngineKind::VUsionThp) > end(EngineKind::VUsion),
        "THP enhancements must conserve more huge pages than plain VUsion"
    );
    assert!(end(EngineKind::NoFusion) >= end(EngineKind::Ksm));
}
