//! Figure 12: memory consumption during the Apache benchmark.
//!
//! Four VMs boot together; after an idle fusion window the benchmark runs
//! on one of them. Expected shape: fusing engines sit well below no-dedup,
//! and consumption *rises* during the benchmark window for every engine —
//! Apache's self-balancing worker pool expands.

use vusion_bench::{boot_fleet, Report};
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_rng::rngs::StdRng;
use vusion_rng::SeedableRng;
use vusion_workloads::apache::ApacheServer;
use vusion_workloads::runner::{consumed_mib, sample_idle};

fn series(kind: EngineKind) -> Vec<(f64, f64)> {
    let mut sys = kind.build_system(MachineConfig::guest_2g_scaled().with_thp());
    let vms = boot_fleet(&mut sys, 4, 0);
    let mut out: Vec<(f64, f64)> = Vec::new();
    // Idle fusion window ("benchmark starts at t = 360 s" in the paper;
    // scaled to 36 s here).
    for s in sample_idle(&mut sys, 36_000_000_000, 4_000_000_000) {
        out.push((s.t_s, s.mib));
    }
    // Benchmark window: the server self-balances and allocates workers.
    let server = ApacheServer {
        initial_workers: 4,
        max_workers: 14,
        grow_every: 150,
        ..Default::default()
    };
    let mut inst = server.start(&mut sys, &vms[0]);
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..10 {
        for _ in 0..150 {
            inst.serve(&mut sys, &mut rng);
        }
        sys.idle(2_000_000_000);
        out.push((sys.machine.now_ns() as f64 / 1e9, consumed_mib(&sys)));
    }
    out
}

fn main() {
    let mut rep = Report::new(
        "Figure 12",
        "Memory consumption during the Apache benchmark",
    );
    let kinds = [
        EngineKind::NoFusion,
        EngineKind::Ksm,
        EngineKind::VUsion,
        EngineKind::VUsionThp,
    ];
    let all: Vec<(EngineKind, Vec<(f64, f64)>)> = kinds.iter().map(|&k| (k, series(k))).collect();
    rep.text(format!(
        "t(s)    {:>10} {:>10} {:>10} {:>10}",
        "No dedup", "KSM", "VUsion", "VUsion THP"
    ));
    let n = all.iter().map(|(_, s)| s.len()).min().expect("series");
    for i in 0..n {
        let mut line = format!("{:<7.0}", all[0].1[i].0);
        let mut cells = Vec::new();
        for (k, s) in &all {
            line.push_str(&format!(" {:>10.2}", s[i].1));
            cells.push((k.label(), format!("{:.2}", s[i].1)));
        }
        rep.raw_row(&line, &format!("t_{:.1}", all[0].1[i].0), &cells);
    }
    // Shapes: fusion reclaims during the idle window; the benchmark grows
    // memory for every engine (self-balancing workers).
    for (kind, s) in &all {
        let bench_start = s[8].1;
        let bench_end = s.last().expect("series").1;
        assert!(
            bench_end > bench_start,
            "{kind:?}: Apache's worker growth must raise consumption"
        );
    }
    let at_bench_start = |k: EngineKind| all.iter().find(|(kk, _)| *kk == k).expect("ran").1[8].1;
    assert!(at_bench_start(EngineKind::Ksm) < at_bench_start(EngineKind::NoFusion));
    rep.text("\npaper shape: fused curves below no-dedup; all rise during the benchmark window");
    rep.finish();
}
