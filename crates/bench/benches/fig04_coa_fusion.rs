//! Figure 4: copy-on-access vs copy-on-write fusion rates, and the
//! zero-page-only share.
//!
//! Four VMs run an Apache-like load while fusion proceeds; the paper shows
//! that unmerging on *any* fault (copy-on-access) costs only ~1% of the
//! fusion rate, because most benefits come from idle pages — while merging
//! only zero pages captures a mere 16% of the duplicates.

use vusion_bench::{boot_fleet, Report};
use vusion_core::EngineKind;
use vusion_kernel::MachineConfig;
use vusion_rng::rngs::StdRng;
use vusion_rng::SeedableRng;
use vusion_workloads::apache::ApacheServer;

fn fused_pages(kind: EngineKind) -> u64 {
    let mut sys = kind.build_system(MachineConfig::guest_2g_scaled());
    let vms = boot_fleet(&mut sys, 4, 0);
    // One VM serves requests (its working set stays hot).
    let server = ApacheServer {
        initial_workers: 4,
        max_workers: 6,
        ..Default::default()
    };
    let mut inst = server.start(&mut sys, &vms[0]);
    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..12 {
        for _ in 0..60 {
            inst.serve(&mut sys, &mut rng);
        }
        sys.force_scans(60);
        let _ = round;
    }
    sys.policy.pages_saved()
}

fn main() {
    let mut rep = Report::new("Figure 4", "Effect of copy-on-access on fusion rates");
    let cow = fused_pages(EngineKind::Ksm);
    let coa = fused_pages(EngineKind::KsmCoa);
    let zero = fused_pages(EngineKind::KsmZeroOnly);
    rep.row(
        "KSM (CoW)",
        &[
            ("pages_saved", cow.to_string()),
            ("rel", "100%".to_string()),
        ],
    );
    rep.row(
        "KSM (CoA)",
        &[
            ("pages_saved", coa.to_string()),
            ("rel", format!("{:.1}%", coa as f64 * 100.0 / cow as f64)),
            ("paper", "~99% of CoW".to_string()),
        ],
    );
    rep.row(
        "zero-only",
        &[
            ("pages_saved", zero.to_string()),
            ("rel", format!("{:.1}%", zero as f64 * 100.0 / cow as f64)),
            ("paper", "~16% of duplicates".to_string()),
        ],
    );
    assert!(
        coa as f64 >= cow as f64 * 0.8,
        "CoA must retain most of the fusion rate"
    );
    assert!(
        (zero as f64) < cow as f64 * 0.6,
        "zero pages are a minority of duplicates"
    );
    rep.finish();
}
