//! DRAM geometry, row-buffer timing, and a Rowhammer fault model.
//!
//! §4.2 of the paper: DRAM is organized in rows of cells; activating two
//! *aggressor* rows in rapid alternation within a refresh interval leaks
//! charge from cells in adjacent *victim* rows until bits flip
//! (Kim et al., ISCA'14). Flip Feng Shui combines such flips with page
//! fusion's predictable physical-memory reuse to corrupt a victim's data.
//!
//! The model here is deliberately faithful to what the attacks need:
//!
//! * a deterministic physical-address → (bank, row, column) mapping with its
//!   inverse, so attackers can aim double-sided hammering;
//! * per-bank open-row buffers whose hit/conflict outcomes feed the
//!   simulated clock (row-buffer timing is also a side channel, §5.3);
//! * a seeded population of *weak cells* with per-cell flip thresholds:
//!   hammering a pair of aggressor rows for enough iterations flips exactly
//!   the weak cells whose thresholds were exceeded — reproducibly, which is
//!   what makes *templating* (profile first, exploit later) work.

pub mod geometry;
pub mod rowhammer;

pub use geometry::{DramConfig, DramLocation, RowBufferOutcome, RowBuffers};
pub use rowhammer::{FlipEvent, HammerOutcome, RowhammerModel};
