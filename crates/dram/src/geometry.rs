//! Physical-address ↔ DRAM-location mapping and per-bank row buffers.

use vusion_mem::PhysAddr;

/// Geometry of the simulated memory module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (row buffers).
    pub banks: u64,
    /// Row size in bytes. 8 KiB ⇒ each row spans two 4 KiB pages, as on the
    /// paper's DDR4 testbed.
    pub row_size: u64,
}

impl DramConfig {
    /// Default geometry: 8 banks, 8 KiB rows (two pages per row).
    pub fn ddr4() -> Self {
        Self {
            banks: 8,
            row_size: 8192,
        }
    }

    /// A single-bank geometry that makes row adjacency line up with frame
    /// adjacency — convenient for unit tests.
    pub fn single_bank() -> Self {
        Self {
            banks: 1,
            row_size: 8192,
        }
    }

    /// Pages per DRAM row.
    pub fn pages_per_row(&self) -> u64 {
        self.row_size / vusion_mem::PAGE_SIZE
    }

    /// Maps a physical address to its DRAM location.
    ///
    /// Banks interleave at row-size granularity: consecutive row-sized
    /// chunks of the physical address space go to consecutive banks, and a
    /// bank's next row is `banks` chunks later. This is a simplification of
    /// real DDR4 bank XOR functions but preserves the property attacks need:
    /// a deterministic, invertible map the attacker can learn.
    pub fn locate(&self, addr: PhysAddr) -> DramLocation {
        let chunk = addr.0 / self.row_size;
        DramLocation {
            bank: chunk % self.banks,
            row: chunk / self.banks,
            col: addr.0 % self.row_size,
        }
    }

    /// Inverse of [`Self::locate`].
    pub fn address_of(&self, loc: DramLocation) -> PhysAddr {
        PhysAddr((loc.row * self.banks + loc.bank) * self.row_size + loc.col)
    }
}

/// A (bank, row, column) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Bank index.
    pub bank: u64,
    /// Row index within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub col: u64,
}

/// Outcome of a DRAM access with respect to the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The requested row was already open (fast).
    Hit,
    /// The bank had no open row (first access).
    Empty,
    /// Another row was open and had to be closed first (slow, and an
    /// *activation* of the new row — the Rowhammer ingredient).
    Conflict,
}

/// Per-bank open-row state.
#[derive(Debug, Clone)]
pub struct RowBuffers {
    cfg: DramConfig,
    open: Vec<Option<u64>>,
    activations: u64,
}

impl RowBuffers {
    /// Creates closed row buffers for every bank.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            open: vec![None; cfg.banks as usize],
            activations: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Accesses an address: returns whether the row buffer hit, and opens
    /// the accessed row.
    pub fn access(&mut self, addr: PhysAddr) -> RowBufferOutcome {
        let loc = self.cfg.locate(addr);
        let slot = &mut self.open[loc.bank as usize];
        match *slot {
            Some(r) if r == loc.row => RowBufferOutcome::Hit,
            Some(_) => {
                *slot = Some(loc.row);
                self.activations += 1;
                RowBufferOutcome::Conflict
            }
            None => {
                *slot = Some(loc.row);
                self.activations += 1;
                RowBufferOutcome::Empty
            }
        }
    }

    /// Total row activations so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Closes all rows (refresh / precharge-all).
    pub fn precharge_all(&mut self) {
        for s in &mut self.open {
            *s = None;
        }
    }
}

impl vusion_snapshot::Snapshot for RowBuffers {
    fn save(&self, w: &mut vusion_snapshot::Writer) {
        w.u64(self.cfg.banks);
        w.u64(self.cfg.row_size);
        for slot in &self.open {
            match slot {
                Some(row) => {
                    w.bool(true);
                    w.u64(*row);
                }
                None => w.bool(false),
            }
        }
        w.u64(self.activations);
    }

    fn load(
        &mut self,
        r: &mut vusion_snapshot::Reader<'_>,
    ) -> Result<(), vusion_snapshot::SnapshotError> {
        use vusion_snapshot::SnapshotError;
        if r.u64()? != self.cfg.banks || r.u64()? != self.cfg.row_size {
            return Err(SnapshotError::Corrupt("dram geometry mismatch"));
        }
        for slot in &mut self.open {
            *slot = if r.bool()? { Some(r.u64()?) } else { None };
        }
        self.activations = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_and_inverse_roundtrip() {
        let cfg = DramConfig::ddr4();
        for a in [0u64, 4096, 8192, 65536, 1 << 20, (1 << 20) + 777] {
            let loc = cfg.locate(PhysAddr(a));
            assert_eq!(cfg.address_of(loc), PhysAddr(a));
        }
    }

    #[test]
    fn two_pages_share_a_row() {
        let cfg = DramConfig::single_bank();
        let a = cfg.locate(PhysAddr(0));
        let b = cfg.locate(PhysAddr(4096));
        let c = cfg.locate(PhysAddr(8192));
        assert_eq!(a.row, b.row);
        assert_eq!(c.row, a.row + 1);
    }

    #[test]
    fn banks_interleave() {
        let cfg = DramConfig::ddr4();
        let a = cfg.locate(PhysAddr(0));
        let b = cfg.locate(PhysAddr(cfg.row_size));
        assert_eq!(a.bank, 0);
        assert_eq!(b.bank, 1);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn row_buffer_hit_after_open() {
        let mut rb = RowBuffers::new(DramConfig::single_bank());
        assert_eq!(rb.access(PhysAddr(0)), RowBufferOutcome::Empty);
        assert_eq!(rb.access(PhysAddr(100)), RowBufferOutcome::Hit);
        assert_eq!(
            rb.access(PhysAddr(4096)),
            RowBufferOutcome::Hit,
            "same row, next page"
        );
        assert_eq!(
            rb.access(PhysAddr(8192)),
            RowBufferOutcome::Conflict,
            "next row"
        );
        assert_eq!(
            rb.access(PhysAddr(0)),
            RowBufferOutcome::Conflict,
            "back again"
        );
        assert_eq!(rb.activations(), 3);
    }

    #[test]
    fn banks_have_independent_buffers() {
        let cfg = DramConfig::ddr4();
        let mut rb = RowBuffers::new(cfg);
        rb.access(PhysAddr(0)); // Bank 0.
        rb.access(PhysAddr(cfg.row_size)); // Bank 1.
        assert_eq!(
            rb.access(PhysAddr(64)),
            RowBufferOutcome::Hit,
            "bank 0 row still open"
        );
    }

    #[test]
    fn precharge_closes_rows() {
        let mut rb = RowBuffers::new(DramConfig::single_bank());
        rb.access(PhysAddr(0));
        rb.precharge_all();
        assert_eq!(rb.access(PhysAddr(0)), RowBufferOutcome::Empty);
    }
}
