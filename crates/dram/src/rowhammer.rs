//! The Rowhammer fault model: seeded weak cells with flip thresholds.
//!
//! Real DRAM modules have a fixed population of cells that are susceptible
//! to disturbance errors; which cells flip is a property of the chip and is
//! highly reproducible — that reproducibility is what makes Flip Feng Shui's
//! *templating* phase (find a flip in your own memory, then steer victim
//! data onto it) possible. We model this with a per-module seed: the weak
//! cells of a row and their activation thresholds are a deterministic
//! function of `(seed, bank, row)`.

use vusion_mem::PhysAddr;
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngExt, SeedableRng};

use crate::geometry::{DramConfig, DramLocation};

/// A bit flip produced by hammering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlipEvent {
    /// Physical address of the affected byte.
    pub addr: PhysAddr,
    /// Bit index within the byte (0 = LSB).
    pub bit: u8,
}

/// Result of one hammering burst.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HammerOutcome {
    /// Bits that flipped during this burst (deduplicated; a cell flips at
    /// most once per burst).
    pub flips: Vec<FlipEvent>,
    /// Total row activations performed.
    pub activations: u64,
}

/// The fault model for one memory module.
pub struct RowhammerModel {
    cfg: DramConfig,
    seed: u64,
    /// Fraction of rows containing at least one weak cell.
    weak_row_fraction: f64,
    /// Threshold range (in per-side hammer iterations) for weak cells.
    threshold_range: (u64, u64),
}

/// SplitMix64, used to derive per-row randomness deterministically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RowhammerModel {
    /// Creates a fault model for a module with the given geometry and seed.
    ///
    /// `weak_row_fraction` is the probability that a row contains weak
    /// cells; the default used by experiments is 0.35, generous enough that
    /// templating over a few hundred rows finds flips (as on the vulnerable
    /// DDR3/DDR4 modules studied by the Rowhammer literature).
    pub fn new(cfg: DramConfig, seed: u64, weak_row_fraction: f64) -> Self {
        Self {
            cfg,
            seed,
            weak_row_fraction,
            threshold_range: (200_000, 1_200_000),
        }
    }

    /// Default model used by the Flip Feng Shui experiments.
    pub fn vulnerable_module(cfg: DramConfig, seed: u64) -> Self {
        Self::new(cfg, seed, 0.35)
    }

    /// The geometry.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// The weak cells of a row: `(column, bit, threshold)` triples.
    ///
    /// Deterministic in `(seed, bank, row)`.
    pub fn weak_cells(&self, bank: u64, row: u64) -> Vec<(u64, u8, u64)> {
        let h =
            splitmix64(self.seed ^ bank.wrapping_mul(0x9e37_79b9) ^ row.wrapping_mul(0x85eb_ca6b));
        // Decide whether the row is weak at all.
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        if frac >= self.weak_row_fraction {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(h);
        let count = rng.random_range(1..=3usize);
        let (lo, hi) = self.threshold_range;
        (0..count)
            .map(|_| {
                let col = rng.random_range(0..self.cfg.row_size);
                let bit = rng.random_range(0..8u8);
                let threshold = rng.random_range(lo..hi);
                (col, bit, threshold)
            })
            .collect()
    }

    /// Hammers the rows containing `aggr1` and `aggr2` for `iterations`
    /// alternating activations, returning the flips induced in adjacent
    /// victim rows.
    ///
    /// Victim rows adjacent to **both** aggressors receive double
    /// disturbance (double-sided Rowhammer, §4.2: "known to trigger more
    /// bit flips reliably"); rows adjacent to one aggressor receive single
    /// disturbance. Aggressors in different banks hammer independently.
    pub fn hammer(&self, aggr1: PhysAddr, aggr2: PhysAddr, iterations: u64) -> HammerOutcome {
        let l1 = self.cfg.locate(aggr1);
        let l2 = self.cfg.locate(aggr2);
        if l1.bank == l2.bank && l1.row == l2.row {
            // Not an alternation: the row buffer stays open, the row is
            // activated once, and nothing is disturbed.
            return HammerOutcome {
                flips: Vec::new(),
                activations: 1,
            };
        }
        let mut outcome = HammerOutcome {
            flips: Vec::new(),
            activations: iterations * 2,
        };
        // Disturbance per victim row: map (bank, row) -> multiplier.
        let mut victims: Vec<(u64, u64, u64)> = Vec::new(); // (bank, row, disturbance)
        let mut add = |bank: u64, row: i64, amount: u64| {
            if row < 0 {
                return;
            }
            let row = row as u64;
            match victims.iter_mut().find(|(b, r, _)| *b == bank && *r == row) {
                Some((_, _, d)) => *d += amount,
                None => victims.push((bank, row, amount)),
            }
        };
        for l in [l1, l2] {
            add(l.bank, l.row as i64 - 1, iterations);
            add(l.bank, l.row as i64 + 1, iterations);
        }
        for (bank, row, disturbance) in victims {
            // Aggressor rows themselves never flip (they are being rewritten
            // constantly by the attacker).
            if (bank == l1.bank && row == l1.row) || (bank == l2.bank && row == l2.row) {
                continue;
            }
            for (col, bit, threshold) in self.weak_cells(bank, row) {
                if disturbance >= threshold {
                    let addr = self.cfg.address_of(DramLocation { bank, row, col });
                    outcome.flips.push(FlipEvent { addr, bit });
                }
            }
        }
        outcome
    }

    /// Convenience: double-sided hammer around a victim row. `victim` is any
    /// address in the victim row; the aggressors are the rows above and
    /// below in the same bank.
    pub fn hammer_double_sided(&self, victim: PhysAddr, iterations: u64) -> HammerOutcome {
        let v = self.cfg.locate(victim);
        if v.row == 0 {
            return HammerOutcome::default();
        }
        let above = self.cfg.address_of(DramLocation {
            bank: v.bank,
            row: v.row - 1,
            col: 0,
        });
        let below = self.cfg.address_of(DramLocation {
            bank: v.bank,
            row: v.row + 1,
            col: 0,
        });
        self.hammer(above, below, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RowhammerModel {
        RowhammerModel::vulnerable_module(DramConfig::single_bank(), 1234)
    }

    #[test]
    fn weak_cells_are_deterministic() {
        let m = model();
        assert_eq!(m.weak_cells(0, 17), m.weak_cells(0, 17));
    }

    #[test]
    fn weak_cells_vary_by_row_and_seed() {
        let m1 = model();
        let m2 = RowhammerModel::vulnerable_module(DramConfig::single_bank(), 9999);
        let rows_with_cells_1: Vec<u64> = (0..200)
            .filter(|&r| !m1.weak_cells(0, r).is_empty())
            .collect();
        let rows_with_cells_2: Vec<u64> = (0..200)
            .filter(|&r| !m2.weak_cells(0, r).is_empty())
            .collect();
        assert!(!rows_with_cells_1.is_empty(), "some rows must be weak");
        assert!(rows_with_cells_1.len() < 200, "not all rows are weak");
        assert_ne!(
            rows_with_cells_1, rows_with_cells_2,
            "seed changes the module"
        );
    }

    #[test]
    fn hammering_weak_row_flips_reproducibly() {
        let m = model();
        // Find a weak victim row.
        let row = (1..500)
            .find(|&r| !m.weak_cells(0, r).is_empty())
            .expect("weak row exists");
        let victim = m.config().address_of(DramLocation {
            bank: 0,
            row,
            col: 0,
        });
        let o1 = m.hammer_double_sided(victim, 2_000_000);
        let o2 = m.hammer_double_sided(victim, 2_000_000);
        assert!(
            !o1.flips.is_empty(),
            "enough iterations must flip weak cells"
        );
        assert_eq!(o1.flips, o2.flips, "templating requires reproducibility");
        // All flips land in rows adjacent to an aggressor (the aggressors
        // are row-1 and row+1, so victims are row-2, row, row+2).
        for f in &o1.flips {
            let r = m.config().locate(f.addr).row;
            assert!(
                [row - 2, row, row + 2].contains(&r),
                "row {r} is not a victim of {row}±1"
            );
        }
        // And the doubly disturbed middle row flips whenever it is weak.
        if !m.weak_cells(0, row).is_empty() {
            assert!(o1
                .flips
                .iter()
                .any(|f| m.config().locate(f.addr).row == row));
        }
    }

    #[test]
    fn too_few_iterations_flip_nothing() {
        let m = model();
        let row = (1..500)
            .find(|&r| !m.weak_cells(0, r).is_empty())
            .expect("weak row exists");
        let victim = m.config().address_of(DramLocation {
            bank: 0,
            row,
            col: 0,
        });
        let o = m.hammer_double_sided(victim, 10);
        assert!(o.flips.is_empty());
    }

    #[test]
    fn double_sided_beats_single_sided() {
        let m = model();
        // Count flips across many rows at an iteration count where only the
        // doubled disturbance passes low thresholds.
        let iters = 300_000;
        let mut ds = 0usize;
        let mut ss = 0usize;
        for row in 1..300u64 {
            let victim = m.config().address_of(DramLocation {
                bank: 0,
                row,
                col: 0,
            });
            ds += m
                .hammer_double_sided(victim, iters)
                .flips
                .iter()
                .filter(|f| m.config().locate(f.addr).row == row)
                .count();
            // Single-sided: alternate the row above with a far-away row, so
            // the victim is disturbed from one side only.
            let above = m.config().address_of(DramLocation {
                bank: 0,
                row: row - 1,
                col: 0,
            });
            let far = m.config().address_of(DramLocation {
                bank: 0,
                row: row + 1000,
                col: 0,
            });
            ss += m
                .hammer(above, far, iters)
                .flips
                .iter()
                .filter(|f| m.config().locate(f.addr).row == row)
                .count();
        }
        assert!(
            ds > ss,
            "double-sided ({ds}) must out-flip single-sided ({ss})"
        );
    }

    #[test]
    fn strong_module_never_flips() {
        let m = RowhammerModel::new(DramConfig::single_bank(), 5, 0.0);
        for row in 1..200u64 {
            let victim = m.config().address_of(DramLocation {
                bank: 0,
                row,
                col: 0,
            });
            assert!(m.hammer_double_sided(victim, 10_000_000).flips.is_empty());
        }
    }

    #[test]
    fn row_zero_cannot_be_double_sided() {
        let m = model();
        assert_eq!(
            m.hammer_double_sided(PhysAddr(0), 1_000_000),
            HammerOutcome::default()
        );
    }

    #[test]
    fn flips_target_adjacent_rows_only() {
        let m = model();
        let a1 = m.config().address_of(DramLocation {
            bank: 0,
            row: 10,
            col: 0,
        });
        let a2 = m.config().address_of(DramLocation {
            bank: 0,
            row: 12,
            col: 0,
        });
        let o = m.hammer(a1, a2, 5_000_000);
        for f in &o.flips {
            let r = m.config().locate(f.addr).row;
            assert!(
                (9..=13).contains(&r) && r != 10 && r != 12,
                "row {r} is not a victim"
            );
        }
    }
}
