//! Property-style tests for the DRAM and Rowhammer models, driven by the
//! in-repo seeded PRNG: each test sweeps many seeds so failures reproduce
//! exactly by seed.

use vusion_dram::{DramConfig, DramLocation, RowBufferOutcome, RowBuffers, RowhammerModel};
use vusion_mem::PhysAddr;
use vusion_rng::rngs::StdRng;
use vusion_rng::{RngCore, RngExt, SeedableRng};

const SEEDS: u64 = 64;

/// Address mapping is a bijection on the covered range.
#[test]
fn locate_is_invertible() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11d4);
        let addr = rng.random_range(0u64..(1 << 32));
        for cfg in [DramConfig::ddr4(), DramConfig::single_bank()] {
            let loc = cfg.locate(PhysAddr(addr));
            assert_eq!(cfg.address_of(loc), PhysAddr(addr), "seed {seed}");
            assert!(loc.bank < cfg.banks, "seed {seed}");
            assert!(loc.col < cfg.row_size, "seed {seed}");
        }
    }
}

/// Row-buffer behavior: accesses within one row hit after the first;
/// switching rows in a bank conflicts.
#[test]
fn row_buffer_semantics() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x22d4);
        let row_a = rng.random_range(0u64..1000);
        let row_b = rng.random_range(0u64..1000);
        if row_a == row_b {
            continue;
        }
        let cfg = DramConfig::single_bank();
        let mut rb = RowBuffers::new(cfg);
        let a = cfg.address_of(DramLocation {
            bank: 0,
            row: row_a,
            col: 0,
        });
        let b = cfg.address_of(DramLocation {
            bank: 0,
            row: row_b,
            col: 128,
        });
        assert_eq!(rb.access(a), RowBufferOutcome::Empty, "seed {seed}");
        assert_eq!(
            rb.access(PhysAddr(a.0 + 64)),
            RowBufferOutcome::Hit,
            "seed {seed}"
        );
        assert_eq!(rb.access(b), RowBufferOutcome::Conflict, "seed {seed}");
        assert_eq!(rb.access(a), RowBufferOutcome::Conflict, "seed {seed}");
    }
}

/// Rowhammer determinism: identical hammering produces identical flips,
/// and flips only land in rows adjacent to an aggressor.
#[test]
fn hammer_is_deterministic_and_local() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x33d4);
        let module_seed = rng.next_u64();
        let r1 = rng.random_range(2u64..500);
        let gap = rng.random_range(2u64..6);
        let cfg = DramConfig::single_bank();
        let m = RowhammerModel::vulnerable_module(cfg, module_seed);
        let a1 = cfg.address_of(DramLocation {
            bank: 0,
            row: r1,
            col: 0,
        });
        let a2 = cfg.address_of(DramLocation {
            bank: 0,
            row: r1 + gap,
            col: 0,
        });
        let o1 = m.hammer(a1, a2, 2_000_000);
        let o2 = m.hammer(a1, a2, 2_000_000);
        assert_eq!(&o1.flips, &o2.flips, "seed {seed}");
        let victims = [r1 - 1, r1 + 1, r1 + gap - 1, r1 + gap + 1];
        for f in &o1.flips {
            let row = cfg.locate(f.addr).row;
            assert!(
                victims.contains(&row),
                "seed {seed}: flip in non-victim row {row}"
            );
        }
    }
}

/// Monotonicity: more iterations can only produce a superset of flips.
#[test]
fn more_hammering_flips_more() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x44d4);
        let module_seed = rng.next_u64();
        let row = rng.random_range(2u64..300);
        let cfg = DramConfig::single_bank();
        let m = RowhammerModel::vulnerable_module(cfg, module_seed);
        let victim = cfg.address_of(DramLocation {
            bank: 0,
            row,
            col: 0,
        });
        let small = m.hammer_double_sided(victim, 300_000);
        let large = m.hammer_double_sided(victim, 2_500_000);
        for f in &small.flips {
            assert!(
                large.flips.contains(f),
                "seed {seed}: flip lost at higher iteration count"
            );
        }
    }
}

/// Weak-cell positions are always inside the row.
#[test]
fn weak_cells_in_bounds() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55d4);
        let module_seed = rng.next_u64();
        let row = rng.random_range(0u64..2000);
        let cfg = DramConfig::ddr4();
        let m = RowhammerModel::vulnerable_module(cfg, module_seed);
        for bank in 0..cfg.banks {
            for (col, bit, threshold) in m.weak_cells(bank, row) {
                assert!(col < cfg.row_size, "seed {seed}");
                assert!(bit < 8, "seed {seed}");
                assert!(threshold > 0, "seed {seed}");
            }
        }
    }
}
