//! Property tests for the DRAM and Rowhammer models.

use proptest::prelude::*;
use vusion_dram::{DramConfig, DramLocation, RowBufferOutcome, RowBuffers, RowhammerModel};
use vusion_mem::PhysAddr;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Address mapping is a bijection on the covered range.
    #[test]
    fn locate_is_invertible(addr in 0u64..(1 << 32)) {
        for cfg in [DramConfig::ddr4(), DramConfig::single_bank()] {
            let loc = cfg.locate(PhysAddr(addr));
            prop_assert_eq!(cfg.address_of(loc), PhysAddr(addr));
            prop_assert!(loc.bank < cfg.banks);
            prop_assert!(loc.col < cfg.row_size);
        }
    }

    /// Row-buffer behavior: accesses within one row hit after the first;
    /// switching rows in a bank conflicts.
    #[test]
    fn row_buffer_semantics(row_a in 0u64..1000, row_b in 0u64..1000) {
        prop_assume!(row_a != row_b);
        let cfg = DramConfig::single_bank();
        let mut rb = RowBuffers::new(cfg);
        let a = cfg.address_of(DramLocation { bank: 0, row: row_a, col: 0 });
        let b = cfg.address_of(DramLocation { bank: 0, row: row_b, col: 128 });
        prop_assert_eq!(rb.access(a), RowBufferOutcome::Empty);
        prop_assert_eq!(rb.access(PhysAddr(a.0 + 64)), RowBufferOutcome::Hit);
        prop_assert_eq!(rb.access(b), RowBufferOutcome::Conflict);
        prop_assert_eq!(rb.access(a), RowBufferOutcome::Conflict);
    }

    /// Rowhammer determinism: identical hammering produces identical flips,
    /// and flips only land in rows adjacent to an aggressor.
    #[test]
    fn hammer_is_deterministic_and_local(seed in any::<u64>(), r1 in 2u64..500, gap in 2u64..6) {
        let cfg = DramConfig::single_bank();
        let m = RowhammerModel::vulnerable_module(cfg, seed);
        let a1 = cfg.address_of(DramLocation { bank: 0, row: r1, col: 0 });
        let a2 = cfg.address_of(DramLocation { bank: 0, row: r1 + gap, col: 0 });
        let o1 = m.hammer(a1, a2, 2_000_000);
        let o2 = m.hammer(a1, a2, 2_000_000);
        prop_assert_eq!(&o1.flips, &o2.flips);
        let victims = [r1 - 1, r1 + 1, r1 + gap - 1, r1 + gap + 1];
        for f in &o1.flips {
            let row = cfg.locate(f.addr).row;
            prop_assert!(victims.contains(&row), "flip in non-victim row {}", row);
        }
    }

    /// Monotonicity: more iterations can only produce a superset of flips.
    #[test]
    fn more_hammering_flips_more(seed in any::<u64>(), row in 2u64..300) {
        let cfg = DramConfig::single_bank();
        let m = RowhammerModel::vulnerable_module(cfg, seed);
        let victim = cfg.address_of(DramLocation { bank: 0, row, col: 0 });
        let small = m.hammer_double_sided(victim, 300_000);
        let large = m.hammer_double_sided(victim, 2_500_000);
        for f in &small.flips {
            prop_assert!(large.flips.contains(f), "flip lost at higher iteration count");
        }
    }

    /// Weak-cell positions are always inside the row.
    #[test]
    fn weak_cells_in_bounds(seed in any::<u64>(), row in 0u64..2000) {
        let cfg = DramConfig::ddr4();
        let m = RowhammerModel::vulnerable_module(cfg, seed);
        for bank in 0..cfg.banks {
            for (col, bit, threshold) in m.weak_cells(bank, row) {
                prop_assert!(col < cfg.row_size);
                prop_assert!(bit < 8);
                prop_assert!(threshold > 0);
            }
        }
    }
}
