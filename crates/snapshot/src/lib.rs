//! Versioned, checksummed serialization substrate for checkpoint/restore.
//!
//! Every stateful component of the simulated machine — physical frames,
//! allocators, TLBs, clocks, RNG streams, and the fusion engines — can
//! save itself into a [`Writer`] and reload from a [`Reader`]. The crate
//! deliberately has **zero dependencies** (it sits below `mem` in the
//! workspace graph) and defines only the byte-level encoding plus the two
//! traits the rest of the workspace implements:
//!
//! * [`Snapshot`] — object-safe save/load-in-place, implemented by every
//!   serializable struct. Load is *into* an existing value because restore
//!   always targets a freshly constructed machine of the same shape.
//! * [`EngineState`] — marker refinement for fusion engines (KSM, WPF,
//!   VUsion). It adds a stable textual tag written into snapshots so a
//!   bundle recorded under one engine cannot be silently replayed into
//!   another.
//!
//! # Wire format
//!
//! A sealed snapshot is
//!
//! ```text
//! "VSNP" | version: u32 LE | payload bytes... | fnv1a64(header+payload): u64 LE
//! ```
//!
//! The trailing FNV-1a checksum covers magic, version and payload, so a
//! truncated or bit-flipped bundle is rejected before any field decodes.
//! Inside the payload, all integers are little-endian; `usize` travels as
//! `u64`; `f64` travels as its IEEE-754 bit pattern; strings and blobs are
//! length-prefixed. Maps are always written in sorted key order so that
//! two snapshots of identical logical state are byte-identical.

use std::fmt;

/// Current snapshot wire-format version. Bump on any incompatible layout
/// change; [`unseal`] rejects mismatches with [`SnapshotError::BadVersion`].
/// v2: pressure-governor state in the system frame, `budget_used` in scan
/// totals, and resumable-pass cursors in the engine blobs.
/// v3: failure bundles gained a side-channel surface sidecar slot
/// (`surface_tail`) in their sealed wire format.
/// v4: the journal event vocabulary gained `Clflush` (wire tag 13), so a
/// v3 reader would reject journals recorded by v4 code.
pub const FORMAT_VERSION: u32 = 4;

/// Magic bytes opening every sealed snapshot or failure bundle.
pub const MAGIC: &[u8; 4] = b"VSNP";

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the expected field.
    Truncated,
    /// The leading magic bytes are not `VSNP`.
    BadMagic,
    /// The format version does not match [`FORMAT_VERSION`].
    BadVersion {
        /// Version found in the stream.
        found: u32,
    },
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch,
    /// A field decoded to a value that cannot describe a real machine
    /// (unknown enum tag, mismatched geometry, out-of-range index, ...).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::BadMagic => write!(f, "snapshot magic is not VSNP"),
            Self::BadVersion { found } => {
                write!(f, "snapshot version {found} (expected {FORMAT_VERSION})")
            }
            Self::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            Self::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over a byte slice; the checksum sealing every snapshot.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only byte sink for serialization.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts an empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the raw (unsealed) payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes raw bytes with no length prefix (caller knows the length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed byte blob.
    pub fn blob(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.bytes(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.blob(v.as_bytes());
    }

    /// Writes a length-prefixed slice of `u64`s.
    pub fn u64s(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }
}

/// Cursor over a payload produced by [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `usize` written by [`Writer::usize`], rejecting values that
    /// do not fit the host.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// Reads a bool, rejecting bytes other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool out of range")),
        }
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Reads a length-prefixed blob.
    pub fn blob(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let b = self.blob()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapshotError::Corrupt("invalid utf-8"))
    }

    /// Reads a length-prefixed slice of `u64`s.
    pub fn u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.usize()?;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }
}

/// Seals a payload: magic + version + payload + trailing FNV-1a checksum.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates magic, version and checksum, returning the inner payload.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if &body[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut vb = [0u8; 4];
    vb.copy_from_slice(&body[4..8]);
    let version = u32::from_le_bytes(vb);
    if version != FORMAT_VERSION {
        return Err(SnapshotError::BadVersion { found: version });
    }
    let mut sb = [0u8; 8];
    sb.copy_from_slice(tail);
    if fnv1a64(body) != u64::from_le_bytes(sb) {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(&body[8..])
}

/// Object-safe save/load-in-place serialization.
///
/// `load` mutates `self` rather than constructing a new value because the
/// restore path always starts from a freshly built machine of the same
/// configuration; this keeps the trait usable through `dyn` (e.g. boxed
/// fusion policies).
pub trait Snapshot {
    /// Appends this value's full state to `w`.
    fn save(&self, w: &mut Writer);
    /// Overwrites `self` with state previously written by [`Self::save`].
    fn load(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError>;
}

/// A fusion engine whose complete scan/merge state can be checkpointed.
///
/// The tag is written into every snapshot and verified on restore, so a
/// KSM bundle cannot be replayed into a VUsion system by mistake.
pub trait EngineState: Snapshot {
    /// Stable identifier for this engine's snapshot payload.
    fn engine_tag(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.usize(12345);
        w.bool(true);
        w.bool(false);
        w.f64(0.25);
        w.str("hello snapshot");
        w.blob(&[1, 2, 3]);
        w.u64s(&[9, 8, 7]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u32(), Ok(0xdead_beef));
        assert_eq!(r.u64(), Ok(u64::MAX - 3));
        assert_eq!(r.usize(), Ok(12345));
        assert_eq!(r.bool(), Ok(true));
        assert_eq!(r.bool(), Ok(false));
        assert_eq!(r.f64(), Ok(0.25));
        assert_eq!(r.str().as_deref(), Ok("hello snapshot"));
        assert_eq!(r.blob(), Ok(&[1u8, 2, 3][..]));
        assert_eq!(r.u64s(), Ok(vec![9, 8, 7]));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = Writer::new();
        w.u32(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn seal_and_unseal() {
        let mut w = Writer::new();
        w.str("payload");
        let sealed = seal(&w.into_bytes());
        let inner = unseal(&sealed).expect("unseal");
        let mut r = Reader::new(inner);
        assert_eq!(r.str().as_deref(), Ok("payload"));
    }

    #[test]
    fn unseal_rejects_corruption() {
        let sealed = seal(b"abc");
        // Magic.
        let mut bad = sealed.clone();
        bad[0] = b'X';
        assert_eq!(unseal(&bad), Err(SnapshotError::BadMagic));
        // Version.
        let mut bad = sealed.clone();
        bad[4] = 0xff;
        assert!(matches!(
            unseal(&bad),
            Err(SnapshotError::BadVersion { .. })
        ));
        // Payload flip.
        let mut bad = sealed.clone();
        bad[9] ^= 1;
        assert_eq!(unseal(&bad), Err(SnapshotError::ChecksumMismatch));
        // Truncation.
        assert_eq!(unseal(&sealed[..10]), Err(SnapshotError::Truncated));
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(SnapshotError::Truncated.to_string(), "snapshot truncated");
        assert_eq!(
            SnapshotError::BadVersion { found: 9 }.to_string(),
            format!("snapshot version 9 (expected {FORMAT_VERSION})")
        );
        assert!(SnapshotError::Corrupt("x").to_string().contains("x"));
    }
}
